"""The online audit layer: waterfalls, conservation, guarantee replay.

An :class:`Auditor` is an event *sink* — it attaches exactly like the
``Null``/``Ring``/``Jsonl`` tracers (pass it as the ``tracer`` of
:func:`repro.simulate` or tee it in front of another sink) and costs
nothing when absent: the engines' instrumentation sites are the same
single ``is not None`` checks the tracers use. While attached it
maintains, in bounded memory:

* a **per-DMA-transfer latency waterfall** — each transfer's wall time
  decomposed into bus arrival -> TA buffer wait -> wake-up transition ->
  bus queueing -> service inflation, attributed to causes (batching
  delay per release trigger, low-power wake-up, bus contention,
  migration interference vs. plain queueing). Only aggregates and the
  top-``slowest`` transfers are retained.
* an **energy-conservation ledger** — per-chip per-bucket joules
  re-derived from the ``joules`` payload every residency span carries,
  cross-checked in :meth:`Auditor.finalize` against the run's
  :class:`~repro.energy.accounting.EnergyBreakdown` and per-chip totals
  within float round-off.
* a **slack-guarantee monitor** — replays the DMA-TA credit/charge
  scheme epoch by epoch from the ``slack.*`` events and raises a
  structured :class:`AuditViolation` the moment the pessimistic epoch
  charge under-charges (``cycles < epoch * pending``) or the running
  average service time exceeds ``(1 + mu) * T``.

``strict=True`` makes the auditor *fail fast*: the first violation
raises :class:`~repro.errors.AuditError` at the emitting call site,
aborting the run mid-simulation. Otherwise violations accumulate on the
:class:`AuditReport` returned by :meth:`Auditor.finalize` (one recorded
per kind; repeats are counted, not stored).

:func:`audit_result` is the event-free little sibling: cheap invariant
checks on a finished :class:`~repro.sim.results.SimulationResult`, used
by the sweep harness and the bench records to flag impossible numbers
without paying for tracing.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import AuditError
from repro.obs.events import (
    PH_COUNTER,
    PH_INSTANT,
    PH_SPAN,
    TRACK_AUDIT,
    TRACK_CHIP,
    TRACK_SIM,
    Event,
)
from repro.obs.export import RESIDENCY_BUCKETS
from repro.obs.tracer import Tracer

if TYPE_CHECKING:
    from repro.sim.results import SimulationResult

#: Violation kinds the monitor can raise (the spec's two triggers plus
#: the conservation check performed at finalize time).
KIND_UNDERCHARGE = "slack-undercharge"
KIND_GUARANTEE = "guarantee-breach"
KIND_ENERGY = "energy-conservation"
KIND_PENDING_DRIFT = "slack-pending-drift"

#: Waterfall stages, in causal order.
WATERFALL_STAGES = ("buffer", "wake", "bus", "extra")

#: Stage -> default cause attribution.
_STAGE_CAUSE = {
    "buffer": "batching-delay",
    "wake": "low-power-wakeup",
    "bus": "bus-contention",
    "extra": "queueing",
}

#: Relative tolerance of the energy-conservation cross-check. The ledger
#: replays the exact per-span joules the chips accrued, so the only
#: drift is float-add reassociation (a handful of ulps per chip).
ENERGY_REL_TOL = 1e-9

#: Slop on the guarantee comparison, mirroring the engines' own check
#: (``avg > mu * T * (1 + 1e-6) + 1e-9``).
_GUARANTEE_REL_EPS = 1e-6
_GUARANTEE_ABS_EPS = 1e-9


@dataclass(frozen=True)
class AuditViolation:
    """One audited invariant that failed.

    Attributes:
        kind: violation class (``slack-undercharge``,
            ``guarantee-breach``, ``energy-conservation``,
            ``slack-pending-drift``, or a ``result-*`` kind from
            :func:`audit_result`).
        message: one-line human-readable description.
        ts: simulation time (cycles) the violation was detected at
            (0.0 for finalize-time checks).
        epoch: the offending epoch index, when the violation is tied to
            the epoch-granular slack machinery (``None`` otherwise).
        details: structured payload (expected/actual values, chip id...).
    """

    kind: str
    message: str
    ts: float = 0.0
    epoch: int | None = None
    details: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "message": self.message,
                               "ts": self.ts}
        if self.epoch is not None:
            out["epoch"] = self.epoch
        if self.details:
            out["details"] = dict(self.details)
        return out


@dataclass
class _OpenTransfer:
    """In-flight waterfall state of one DMA transfer (bounded by the
    number of transfers simultaneously in flight)."""

    arrival: float
    chip: int = -1
    bus: int = -1
    requests: int = 1
    buffer_wait: float = 0.0
    reason: str = ""
    wake: float = 0.0
    bus_wait: float = 0.0


class AuditReport:
    """Everything one audited run established, as plain data."""

    def __init__(self) -> None:
        self.violations: list[AuditViolation] = []
        #: kind -> number of *additional* occurrences beyond the first.
        self.suppressed: dict[str, int] = {}
        self.transfers_completed = 0
        self.requests_completed = 0
        #: stage -> total cycles across completed transfers.
        self.stage_cycles: dict[str, float] = {s: 0.0 for s in WATERFALL_STAGES}
        #: cause -> total cycles (batching split by release trigger,
        #: service inflation split into queueing vs migration).
        self.cause_cycles: dict[str, float] = {}
        #: The slowest transfers (by total attributable delay), each a
        #: dict with id/chip/bus/requests/stage cycles/causes.
        self.slowest: list[dict[str, Any]] = []
        #: Energy ledger: chip -> bucket -> joules replayed from events.
        self.ledger: dict[int, dict[str, float]] = {}
        self.ledger_checked = False
        self.max_energy_mismatch = 0.0
        #: Slack replay summary.
        self.epochs_charged = 0
        self.charges_replayed = 0.0
        self.refunds_replayed = 0.0
        self.min_slack_replayed = math.inf
        self.guarantee_bound = 0.0
        self.avg_extra_cycles = 0.0
        self.migrations_seen = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "violations": [v.as_dict() for v in self.violations],
            "suppressed": dict(self.suppressed),
            "waterfall": {
                "transfers": self.transfers_completed,
                "requests": self.requests_completed,
                "stage_cycles": dict(self.stage_cycles),
                "cause_cycles": dict(self.cause_cycles),
                "slowest": list(self.slowest),
            },
            "energy": {
                "checked": self.ledger_checked,
                "chips": len(self.ledger),
                "max_mismatch_joules": self.max_energy_mismatch,
            },
            "slack": {
                "epochs_charged": self.epochs_charged,
                "charges_replayed": self.charges_replayed,
                "refunds_replayed": self.refunds_replayed,
                "min_slack_replayed": (
                    None if math.isinf(self.min_slack_replayed)
                    else self.min_slack_replayed),
                "guarantee_bound": self.guarantee_bound,
                "avg_extra_cycles": self.avg_extra_cycles,
            },
            "migrations": self.migrations_seen,
        }

    def waterfall_events(self) -> list[Event]:
        """The slowest transfers as Perfetto spans (one ``audit:<rank>``
        row each, stages laid end to end from the arrival time)."""
        events: list[Event] = []
        for rank, entry in enumerate(self.slowest):
            track = f"{TRACK_AUDIT}:{rank}"
            cursor = entry["arrival"]
            for stage in WATERFALL_STAGES:
                cycles = entry["stages"].get(stage, 0.0)
                if cycles <= 0:
                    continue
                events.append(Event(
                    ts=cursor, name=f"waterfall.{stage}", track=track,
                    ph=PH_SPAN, dur=cycles,
                    args={"id": entry["id"], "cause": entry["causes"].get(
                        stage, _STAGE_CAUSE[stage])}))
                cursor += cycles
            events.append(Event(
                ts=entry["arrival"], name="waterfall.transfer", track=track,
                ph=PH_INSTANT,
                args={"id": entry["id"], "chip": entry["chip"],
                      "bus": entry["bus"], "requests": entry["requests"],
                      "total_delay": entry["total"]}))
        return events

    def render(self) -> str:
        lines = [f"audit: {'OK' if self.ok else 'VIOLATIONS'} — "
                 f"{self.transfers_completed} transfers "
                 f"({self.requests_completed} requests) audited"]
        for violation in self.violations:
            extra = self.suppressed.get(violation.kind, 0)
            suffix = f" (+{extra} more)" if extra else ""
            where = (f" [epoch {violation.epoch}]"
                     if violation.epoch is not None else "")
            lines.append(f"  VIOLATION {violation.kind}{where}: "
                         f"{violation.message}{suffix}")
        total = sum(self.stage_cycles.values())
        if total > 0:
            lines.append("  latency waterfall (cycles of attributable "
                         "delay):")
            for stage in WATERFALL_STAGES:
                cycles = self.stage_cycles[stage]
                share = cycles / total if total else 0.0
                lines.append(f"    {stage:<8} {cycles:14.1f}  "
                             f"({share:6.1%})")
            for cause in sorted(self.cause_cycles):
                lines.append(f"    cause {cause:<22} "
                             f"{self.cause_cycles[cause]:14.1f}")
        if self.ledger_checked:
            lines.append(f"  energy ledger: {len(self.ledger)} chips "
                         f"re-derived, max mismatch "
                         f"{self.max_energy_mismatch:.3e} J")
        if self.epochs_charged:
            min_slack = ("n/a" if math.isinf(self.min_slack_replayed)
                         else f"{self.min_slack_replayed:.1f}")
            lines.append(f"  slack replay: {self.epochs_charged} epoch "
                         f"charges, {self.charges_replayed:.1f} cycles "
                         f"charged, min slack {min_slack}")
        if self.guarantee_bound > 0:
            lines.append(f"  guarantee: avg extra "
                         f"{self.avg_extra_cycles:.3f} cycles/request vs "
                         f"bound {self.guarantee_bound:.3f} (mu*T)")
        return "\n".join(lines)


class Auditor(Tracer):
    """Online audit sink (see the module docstring).

    Args:
        strict: raise :class:`~repro.errors.AuditError` at the event
            that triggers the first violation (fail fast) instead of
            accumulating it on the report.
        downstream: optional tracer every event is forwarded to, so a
            run can be audited *and* recorded (e.g. for Perfetto export)
            in one pass.
        slowest: how many worst-case transfer waterfalls to retain.
        energy_rel_tol: relative tolerance of the conservation check.
    """

    enabled = True

    def __init__(self, strict: bool = False, downstream: Tracer | None = None,
                 slowest: int = 8,
                 energy_rel_tol: float = ENERGY_REL_TOL) -> None:
        self.strict = strict
        self.downstream = downstream
        self.slowest = max(0, slowest)
        self.energy_rel_tol = energy_rel_tol
        self.report = AuditReport()

        # Run parameters (from the sim.config event).
        self._mu = 0.0
        self._service_cycles = 0.0
        self._epoch_cycles = 0.0

        # Waterfall state.
        self._open: dict[int, _OpenTransfer] = {}
        self._open_requests = 0
        #: (total_delay, insertion_order, entry) kept sorted, <= slowest.
        self._slow_heap: list[tuple[float, int, dict[str, Any]]] = []
        self._seen = 0

        # Slack monitor state.
        self._buffered: dict[int, int] = {}   # transfer id -> requests
        self._pending_transfers = 0
        self._pending_requests = 0
        self._charges = 0.0
        self._refunds = 0.0
        self._served = 0.0                    # last served_requests sample
        self._extra_total = 0.0               # completed waited + extra

        # Energy ledger: chip -> bucket -> joules (plain += so the
        # accumulation order matches the chips' own, keeping the replay
        # bit-comparable); completeness flag drops the finalize check
        # when spans without a joules payload were seen.
        self._ledger: dict[int, dict[str, float]] = {}
        self._ledger_complete = True
        self._ledger_spans = 0

    # ------------------------------------------------------------------
    # Sink protocol
    # ------------------------------------------------------------------

    def emit(self, event: Event) -> None:
        track = event.track
        if event.ph == PH_SPAN:
            if track.startswith(TRACK_CHIP) and track[4:5] == ":":
                self._on_chip_span(event)
        elif event.ph == PH_INSTANT:
            handler = self._INSTANTS.get(event.name)
            if handler is not None:
                handler(self, event)
        elif event.ph == PH_COUNTER:
            if event.name == "served_requests" and track == TRACK_SIM:
                args = event.args or {}
                self._served = float(args.get("value", 0.0))
        if self.downstream is not None:
            self.downstream.emit(event)

    def close(self) -> None:
        if self.downstream is not None:
            self.downstream.close()

    def consume(self, events: Iterable[Event]) -> "Auditor":
        """Feed a recorded event stream (offline auditing)."""
        for event in events:
            self.emit(event)
        return self

    # ------------------------------------------------------------------
    # Violations
    # ------------------------------------------------------------------

    def _violate(self, kind: str, message: str, ts: float,
                 epoch: int | None = None,
                 details: Mapping[str, Any] | None = None) -> None:
        if any(v.kind == kind for v in self.report.violations):
            self.report.suppressed[kind] = (
                self.report.suppressed.get(kind, 0) + 1)
            return
        violation = AuditViolation(kind=kind, message=message, ts=ts,
                                   epoch=epoch, details=details or {})
        self.report.violations.append(violation)
        if self.strict:
            raise AuditError(violation)

    def _epoch_of(self, ts: float) -> int | None:
        if self._epoch_cycles > 0:
            return int(round(ts / self._epoch_cycles))
        return None

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_config(self, event: Event) -> None:
        args = event.args or {}
        self._mu = float(args.get("mu", 0.0))
        self._service_cycles = float(args.get("service_cycles", 0.0))
        self._epoch_cycles = float(args.get("epoch_cycles", 0.0))
        self.report.guarantee_bound = self._mu * self._service_cycles

    def _on_chip_span(self, event: Event) -> None:
        args = event.args
        if not args:
            return
        try:
            chip_id = int(event.track.partition(":")[2])
        except ValueError:
            return
        joules = args.get("joules")
        if joules is None:
            # A residency span without an energy payload: the ledger can
            # no longer claim completeness (e.g. replaying a pre-audit
            # event stream).
            self._ledger_complete = False
            return
        buckets = self._ledger.setdefault(
            chip_id, {b: 0.0 for b in RESIDENCY_BUCKETS})
        self._ledger_spans += 1
        if isinstance(joules, Mapping):
            # Exact per-bucket split (fluid busy spans).
            for bucket, value in joules.items():
                if bucket in buckets:
                    buckets[bucket] += float(value)
            return
        bucket = args.get("bucket")
        if isinstance(bucket, str) and bucket in buckets:
            buckets[bucket] += float(joules)
            return
        # Fallback: split the total proportionally to per-bucket cycles.
        dur = event.dur
        if dur > 0:
            total = float(joules)
            for bucket in RESIDENCY_BUCKETS:
                cycles = args.get(bucket)
                if isinstance(cycles, (int, float)) and cycles > 0:
                    buckets[bucket] += total * (cycles / dur)

    def _on_arrive(self, event: Event) -> None:
        args = event.args or {}
        tid = args.get("id")
        if tid is None:
            return
        requests = int(args.get("requests", 1)) or 1
        self._open[tid] = _OpenTransfer(
            arrival=event.ts, chip=int(args.get("chip", -1)),
            bus=int(args.get("bus", -1)), requests=requests)
        self._open_requests += requests

    def _on_buffer(self, event: Event) -> None:
        args = event.args or {}
        tid = args.get("id")
        if tid is None or tid in self._buffered:
            return
        requests = int(args.get("requests", 1)) or 1
        self._buffered[tid] = requests
        self._pending_transfers += 1
        self._pending_requests += requests

    def _on_release(self, event: Event) -> None:
        args = event.args or {}
        tid = args.get("id")
        if tid is None:
            return
        requests = self._buffered.pop(tid, None)
        if requests is not None:
            self._pending_transfers -= 1
            self._pending_requests -= requests
        open_ = self._open.get(tid)
        if open_ is not None:
            open_.buffer_wait = max(0.0, float(args.get(
                "waited", event.ts - open_.arrival)))
            open_.reason = str(args.get("reason", ""))

    def _on_start(self, event: Event) -> None:
        args = event.args or {}
        open_ = self._open.get(args.get("id"))
        if open_ is None:
            return
        open_.wake = max(0.0, float(args.get("wake", 0.0)))
        open_.bus_wait = max(0.0, float(args.get("bus_wait", 0.0)))

    def _on_done(self, event: Event) -> None:
        args = event.args or {}
        tid = args.get("id")
        open_ = self._open.pop(tid, None)
        if open_ is None:
            return
        self._open_requests -= open_.requests
        extra = max(0.0, float(args.get("extra", 0.0)))
        waited = max(0.0, float(args.get("waited", open_.buffer_wait)))
        migration = bool(args.get("mig", 0))

        report = self.report
        report.transfers_completed += 1
        report.requests_completed += open_.requests
        stages = {"buffer": waited, "wake": open_.wake,
                  "bus": open_.bus_wait, "extra": extra}
        causes: dict[str, str] = {}
        for stage, cycles in stages.items():
            if cycles <= 0:
                continue
            cause = _STAGE_CAUSE[stage]
            if stage == "buffer" and open_.reason:
                cause = f"batching-delay:{open_.reason}"
            elif stage == "extra" and migration:
                cause = "migration-interference"
            causes[stage] = cause
            report.stage_cycles[stage] += cycles
            report.cause_cycles[cause] = (
                report.cause_cycles.get(cause, 0.0) + cycles)
        total = sum(stages.values())
        self._note_slow(total, {
            "id": tid, "chip": open_.chip, "bus": open_.bus,
            "requests": open_.requests, "arrival": open_.arrival,
            "stages": stages, "causes": causes, "total": total,
        })

        # The running guarantee check: the sum of attributable delays of
        # completed transfers against the credits of every request that
        # has arrived so far (completed + still in flight), exactly the
        # engines' end-of-run accounting evaluated continuously. Only
        # the TA-covered delays (gather wait + service inflation) count;
        # wake latency is the low-level policy's cost, paid by the
        # baseline too.
        self._extra_total += waited + extra
        if self._mu > 0 and self._service_cycles > 0:
            arrived = report.requests_completed + self._open_requests
            bound = (self._mu * self._service_cycles
                     * (1 + _GUARANTEE_REL_EPS) * arrived
                     + _GUARANTEE_ABS_EPS)
            if self._extra_total > bound and arrived > 0:
                avg = self._extra_total / arrived
                self._violate(
                    KIND_GUARANTEE,
                    f"average extra service time {avg:.3f} cycles/request "
                    f"exceeds the (1+mu)*T allowance "
                    f"(mu*T = {self._mu * self._service_cycles:.3f})",
                    event.ts, epoch=self._epoch_of(event.ts),
                    details={"avg_extra": avg,
                             "allowance": self._mu * self._service_cycles,
                             "requests": arrived})

    def _note_slow(self, total: float, entry: dict[str, Any]) -> None:
        if self.slowest == 0 or total <= 0:
            return
        self._seen += 1
        heap = self._slow_heap
        heap.append((total, self._seen, entry))
        heap.sort(key=lambda item: (-item[0], item[1]))
        del heap[self.slowest:]

    def _on_charge_epoch(self, event: Event) -> None:
        args = event.args or {}
        charged = float(args.get("cycles", 0.0))
        pending = int(args.get("pending", 0))
        epoch_cycles = float(args.get("epoch", self._epoch_cycles))
        self._charges += charged
        self.report.epochs_charged += 1
        epoch = self._epoch_of(event.ts)

        if pending != self._pending_transfers:
            self._violate(
                KIND_PENDING_DRIFT,
                f"slack account charged {pending} pending transfers but "
                f"the event stream shows {self._pending_transfers} "
                "buffered",
                event.ts, epoch=epoch,
                details={"charged_pending": pending,
                         "replayed_pending": self._pending_transfers})
        expected = epoch_cycles * pending
        if charged < expected * (1 - 1e-9) - 1e-6:
            self._violate(
                KIND_UNDERCHARGE,
                f"pessimistic epoch charge under-charged: "
                f"{charged:.1f} cycles for {pending} pending transfers "
                f"(expected epoch * pending = {expected:.1f})",
                event.ts, epoch=epoch,
                details={"charged": charged, "expected": expected,
                         "pending": pending, "epoch_cycles": epoch_cycles})

        # Informational replay of the account balance: credits of every
        # arrived-or-anticipated request minus the replayed charges.
        if self._mu > 0 and self._service_cycles > 0:
            credits = ((self._served + self._pending_requests)
                       * self._mu * self._service_cycles)
            slack = credits + self._refunds - self._charges
            self.report.min_slack_replayed = min(
                self.report.min_slack_replayed, slack)

    def _on_charge(self, event: Event) -> None:
        args = event.args or {}
        self._charges += float(args.get("cycles", 0.0))

    def _on_refund(self, event: Event) -> None:
        args = event.args or {}
        self._refunds += float(args.get("cycles", 0.0))

    def _on_migration(self, event: Event) -> None:
        args = event.args or {}
        self.report.migrations_seen += int(args.get("moves", 0))

    _INSTANTS = {
        "sim.config": _on_config,
        "dma.arrive": _on_arrive,
        "ta.buffer": _on_buffer,
        "dma.release": _on_release,
        "dma.start": _on_start,
        "dma.done": _on_done,
        "slack.charge_epoch": _on_charge_epoch,
        "slack.charge_wake": _on_charge,
        "slack.charge_processor": _on_charge,
        "slack.refund": _on_refund,
        "pl.migration": _on_migration,
    }

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------

    def finalize(self, result: "SimulationResult | None" = None) -> AuditReport:
        """Close the audit: run the end-of-stream invariants and return
        the report. ``result`` enables the energy-conservation
        cross-check and the authoritative guarantee numbers."""
        report = self.report
        report.slowest = [entry for _, _, entry in self._slow_heap]
        report.ledger = self._ledger
        report.charges_replayed = self._charges
        report.refunds_replayed = self._refunds
        if report.requests_completed:
            report.avg_extra_cycles = (
                self._extra_total / report.requests_completed)

        if result is not None:
            self._check_energy(result)
            self._check_guarantee(result)
        return report

    def _check_energy(self, result: "SimulationResult") -> None:
        """Cross-check the replayed ledger against the result's totals."""
        if not self._ledger_complete or self._ledger_spans == 0:
            return
        report = self.report
        report.ledger_checked = True
        mismatches: list[str] = []

        chip_energy = result.chip_energy or []
        for chip_id, buckets in sorted(self._ledger.items()):
            replayed = math.fsum(buckets.values())
            if chip_id >= len(chip_energy):
                continue
            expected = chip_energy[chip_id]
            drift = abs(replayed - expected)
            report.max_energy_mismatch = max(
                report.max_energy_mismatch, drift)
            if drift > self._energy_tol(expected):
                mismatches.append(
                    f"chip {chip_id}: replayed {replayed:.9e} J vs "
                    f"accounted {expected:.9e} J")

        totals = {b: 0.0 for b in RESIDENCY_BUCKETS}
        for buckets in self._ledger.values():
            for bucket, value in buckets.items():
                totals[bucket] += value
        accounted = result.energy.as_dict()
        for bucket in RESIDENCY_BUCKETS:
            expected = accounted.get(bucket, 0.0)
            drift = abs(totals[bucket] - expected)
            report.max_energy_mismatch = max(
                report.max_energy_mismatch, drift)
            if drift > self._energy_tol(expected):
                mismatches.append(
                    f"bucket {bucket}: replayed {totals[bucket]:.9e} J "
                    f"vs accounted {expected:.9e} J")

        if mismatches:
            self._violate(
                KIND_ENERGY,
                "the energy ledger re-derived from events does not "
                "balance against EnergyBreakdown: " + "; ".join(
                    mismatches[:4]),
                0.0, details={"mismatches": mismatches})

    def _energy_tol(self, expected: float) -> float:
        scale = max(abs(expected), 1.0)
        return self.energy_rel_tol * scale

    def _check_guarantee(self, result: "SimulationResult") -> None:
        """Final-average check using the authoritative result totals."""
        report = self.report
        mu, service = result.mu, result.service_cycles
        if mu <= 0 or service <= 0 or not result.requests:
            return
        report.guarantee_bound = mu * service
        avg = (result.head_delay_cycles
               + result.extra_service_cycles) / result.requests
        report.avg_extra_cycles = avg
        if avg > mu * service * (1 + _GUARANTEE_REL_EPS) + _GUARANTEE_ABS_EPS:
            self._violate(
                KIND_GUARANTEE,
                f"final average extra service time {avg:.3f} "
                f"cycles/request exceeds mu*T = {mu * service:.3f}",
                0.0, epoch=self.report.epochs_charged or None,
                details={"avg_extra": avg, "allowance": mu * service})


def audit_events(events: Iterable[Event],
                 result: "SimulationResult | None" = None,
                 strict: bool = False, slowest: int = 8) -> AuditReport:
    """Audit a recorded event stream offline; returns the report."""
    auditor = Auditor(strict=strict, slowest=slowest)
    auditor.consume(events)
    return auditor.finalize(result)


def audit_result(result: "SimulationResult") -> list[AuditViolation]:
    """Event-free invariant checks on a finished result.

    Cheap enough to run on every sweep point and bench outcome: bucket
    non-negativity, the per-chip total against the aggregate
    :class:`~repro.energy.accounting.EnergyBreakdown`, and the
    consistency of the recorded ``guarantee_violated`` flag with the
    delay totals it was derived from.
    """
    violations: list[AuditViolation] = []

    for bucket, value in result.energy.as_dict().items():
        if value < -1e-12:
            violations.append(AuditViolation(
                kind="result-energy-negative",
                message=f"energy bucket {bucket} is negative "
                        f"({value:.3e} J)",
                details={"bucket": bucket, "joules": value}))
            break

    if result.chip_energy:
        total = math.fsum(result.chip_energy)
        expected = result.energy.total
        tol = ENERGY_REL_TOL * max(abs(expected), 1.0)
        if abs(total - expected) > tol:
            violations.append(AuditViolation(
                kind="result-energy-mismatch",
                message=f"per-chip energies sum to {total:.9e} J but the "
                        f"breakdown totals {expected:.9e} J",
                details={"chip_sum": total, "breakdown_total": expected}))

    if result.requests and result.mu > 0 and result.service_cycles > 0:
        avg = (result.head_delay_cycles
               + result.extra_service_cycles) / result.requests
        violated = (avg > result.mu * result.service_cycles
                    * (1 + _GUARANTEE_REL_EPS) + _GUARANTEE_ABS_EPS)
        if violated != result.guarantee_violated:
            violations.append(AuditViolation(
                kind="result-guarantee-flag",
                message="guarantee_violated flag disagrees with the "
                        f"recorded delay totals (avg {avg:.3f} vs "
                        f"mu*T {result.mu * result.service_cycles:.3f})",
                details={"avg_extra": avg,
                         "flag": result.guarantee_violated}))

    return violations


def audit_summary(violations: Iterable[AuditViolation]) -> tuple[str, ...]:
    """Compact one-line messages for sweep/bench surfacing."""
    return tuple(f"{v.kind}: {v.message}" for v in violations)


def write_audit_report(report: AuditReport, path: str | Path) -> Path:
    """Write the report (with its waterfall events) as JSON."""
    path = Path(path)
    payload = report.as_dict()
    payload["waterfall"]["events"] = [
        e.as_dict() for e in report.waterfall_events()]
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


__all__ = [
    "AuditReport", "AuditViolation", "Auditor",
    "KIND_ENERGY", "KIND_GUARANTEE", "KIND_PENDING_DRIFT",
    "KIND_UNDERCHARGE", "WATERFALL_STAGES",
    "audit_events", "audit_result", "audit_summary", "write_audit_report",
]
