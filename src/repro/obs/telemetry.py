"""Live per-epoch telemetry: sampler, bounded store, and exporters.

Both engines can carry a :class:`TelemetrySampler` (``simulate(...,
telemetry=sampler)``). The sampler rides a dedicated read-only event kind
scheduled at a fixed cadence (the DMA-TA epoch length by default, so
"per-epoch" is literal when a DMA-TA technique runs and epoch-equivalent
otherwise) and snapshots, without touching any simulation state:

* per-chip power-state residency-to-date (the seven
  :data:`RESIDENCY_BUCKETS`) and instantaneous power draw,
* the slack account balance and pending (buffered) transfer count,
* cumulative ``pl.migration`` moves plus a derived wave counter,
* per-bus utilization and queue depth,
* degradation-to-date (head delay + extra service cycles) and the
  cumulative arrived-request count.

Samples land in a :class:`TelemetryStore` — a fixed-width numpy ring
with deterministic 2:1 downsampling on overflow, so memory stays
O(capacity) regardless of trace length — and fan out to pluggable
streaming exporters (:class:`JsonlExporter`, :class:`PrometheusExporter`,
:class:`SseBroker`; see :mod:`repro.obs.serve` for the HTTP side).

Two online anomaly detectors watch the stream: a CUSUM on the
degradation rate and a threshold on slack-pending drift. Alarms are
recorded on ``sampler.anomalies`` and — when the run is traced — emitted
as ``telemetry.anomaly`` instants into the existing tracer/audit
pipeline.

The sampler is strictly observational: it never calls ``touch`` /
``advance`` on a chip (splitting an accrual changes float rounding), the
precise engine excludes telemetry events from its end-of-run horizon,
and the array-timeline kernel cuts its batching windows at the next
sample time. A telemetry-enabled run is therefore bit-identical in
:class:`~repro.energy.accounting.EnergyBreakdown` to a disabled one —
the same guarantee the tracer and auditor meet (gated by
``tests/integration/test_telemetry_equivalence.py``).
"""

from __future__ import annotations

import json
import math
import queue
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, TelemetryError
from repro.obs.events import TRACK_SIM

#: Chip residency buckets, in column order (matches
#: :data:`repro.obs.export.RESIDENCY_BUCKETS`).
RESIDENCY_BUCKETS = ("serving_dma", "serving_proc", "idle_dma",
                     "idle_threshold", "transition", "low_power",
                     "migration")

#: Run-wide scalar columns, in row order (per-chip and per-bus blocks
#: follow them; see :meth:`TelemetrySampler.bind`).
SCALAR_COLUMNS = ("ts", "requests", "degradation_cycles", "slack_balance",
                  "slack_pending", "migrations", "migration_waves",
                  "power_w")

_I_TS, _I_REQ, _I_DEG, _I_BAL, _I_PEND, _I_MIG, _I_WAVES, _I_POWER = range(8)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetryConfig:
    """Sampler parameters.

    Attributes:
        sample_cycles: sampling period in memory cycles. ``None`` (the
            default) uses the run's DMA-TA epoch length when the
            controller has one, else ``config.alignment.epoch_cycles``.
        capacity: ring rows kept in memory; on overflow every other row
            is dropped and the acceptance stride doubles (deterministic
            2:1 downsampling, O(capacity) memory forever).
        detectors: run the online anomaly detectors.
        cusum_warmup: samples used to estimate the degradation-rate
            reference mean/sigma before the CUSUM arms (and re-arms
            after each alarm).
        cusum_k_sigmas: CUSUM slack ``k`` in estimated sigmas.
        cusum_h_sigmas: CUSUM alarm threshold ``h`` in estimated sigmas.
        pending_warmup: samples used to baseline the pending count.
        pending_limit: absolute slack-pending alarm threshold; ``None``
            derives ``max(8, 4 * warmup max)`` from the warmup window.
        inject_spike_cycles: fault injection — add this many phantom
            degradation cycles to the *observed* series (the simulation
            is untouched) at the first sample past
            ``inject_spike_at_frac`` of the trace, so tests and CI can
            prove the CUSUM detector fires.
        inject_spike_at_frac: where in the trace the spike lands.
    """

    sample_cycles: float | None = None
    capacity: int = 2048
    detectors: bool = True
    cusum_warmup: int = 16
    cusum_k_sigmas: float = 1.0
    cusum_h_sigmas: float = 10.0
    pending_warmup: int = 8
    pending_limit: float | None = None
    inject_spike_cycles: float = 0.0
    inject_spike_at_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.sample_cycles is not None and self.sample_cycles <= 0:
            raise ConfigurationError("sample_cycles must be positive")
        if self.capacity < 8 or self.capacity % 2:
            raise ConfigurationError("capacity must be an even number >= 8")
        if self.cusum_warmup < 2 or self.pending_warmup < 1:
            raise ConfigurationError("detector warmup windows are too short")
        if not 0.0 <= self.inject_spike_at_frac <= 1.0:
            raise ConfigurationError(
                "inject_spike_at_frac must be in [0, 1]")


# ---------------------------------------------------------------------------
# Bounded columnar store
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetrySnapshot:
    """A consistent copy of the store (safe to read from any thread)."""

    columns: tuple[str, ...]
    data: np.ndarray  # shape (rows, len(columns))
    stride: int
    ticks: int
    dropped: int

    def column(self, name: str) -> np.ndarray:
        return self.data[:, self.columns.index(name)]

    def __len__(self) -> int:
        return self.data.shape[0]


class TelemetryStore:
    """Fixed-width columnar ring with deterministic 2:1 downsampling.

    Row ``i`` always holds the sample whose tick index is ``i * stride``:
    when the ring fills, every other row is compacted away in place and
    the acceptance stride doubles, so the retained rows remain an evenly
    spaced, deterministic subsample of the full stream no matter how
    long the run is. All methods are thread-safe (the HTTP exporters
    read while the simulation thread appends).
    """

    def __init__(self, columns: Sequence[str], capacity: int = 2048) -> None:
        if capacity < 8 or capacity % 2:
            raise ConfigurationError("capacity must be an even number >= 8")
        self.columns = tuple(columns)
        self.capacity = int(capacity)
        self._data = np.zeros((self.capacity, len(self.columns)))
        self._count = 0
        self._stride = 1
        self._ticks = 0
        self._dropped = 0
        self._lock = threading.Lock()

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def stride(self) -> int:
        with self._lock:
            return self._stride

    @property
    def ticks(self) -> int:
        with self._lock:
            return self._ticks

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def append(self, row: np.ndarray) -> bool:
        """Offer one sample; returns True if it was retained.

        Ticks that are not multiples of the current stride are dropped
        (they were already represented by a coarser retained sample
        after a compaction doubled the stride).
        """
        with self._lock:
            tick = self._ticks
            self._ticks += 1
            if tick % self._stride:
                self._dropped += 1
                return False
            if self._count == self.capacity:
                # Compact in place: keep ticks 0, 2s, 4s, ... The
                # triggering tick is stride * capacity — a multiple of
                # the doubled stride (capacity is even), so the row
                # layout invariant survives the compaction.
                half = self.capacity // 2
                self._data[:half] = self._data[0:self.capacity:2]
                self._count = half
                self._stride *= 2
            self._data[self._count] = row
            self._count += 1
            return True

    def snapshot(self) -> TelemetrySnapshot:
        with self._lock:
            return TelemetrySnapshot(
                columns=self.columns,
                data=self._data[:self._count].copy(),
                stride=self._stride,
                ticks=self._ticks,
                dropped=self._dropped,
            )


# ---------------------------------------------------------------------------
# Anomaly detectors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TelemetryAnomaly:
    """One online-detector alarm."""

    kind: str
    ts: float
    sample_index: int
    value: float
    threshold: float
    message: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "ts": self.ts,
                "sample": self.sample_index, "value": self.value,
                "threshold": self.threshold, "message": self.message}


class CusumDetector:
    """One-sided CUSUM on the per-sample degradation increment.

    Degradation increments are heavy-tailed and bursty (a wake cascade
    lands tens of thousands of head-delay cycles in one sample), so a
    plain fixed-reference CUSUM drowns in false alarms. Three
    robustness measures keep the detector quiet on healthy runs while
    still catching genuine shifts:

    * the reference mean/sigma come from a warmup window with scale
      floors (``std``, ``5% |mean|``, ``50%`` of the largest warmup
      increment), so a zero-variance warmup cannot collapse sigma;
    * between alarms, mean and sigma adapt by asymmetric EWMA — fast
      up (0.25), slow down (0.01) — so the learned burst scale is
      sticky and routine bursts stop re-alarming;
    * after an alarm the recursion resets and the reference re-enters
      warmup (keeping the learned sigma as a floor), so a sustained
      shift yields one alarm per regime, not one per sample.

    The recursion itself is the classic ``s = max(0, s + x - (mean +
    k*sigma))`` with alarm at ``s > h*sigma``.
    """

    kind = "degradation-cusum"

    _ALPHA_UP = 0.25
    _ALPHA_DOWN = 0.01
    #: |deviation| -> sigma scale factor for a normal distribution
    #: (E|X-mu| = sigma * sqrt(2/pi), so sigma = dev * 1.2533).
    _DEV_TO_SIGMA = 1.2533

    def __init__(self, warmup: int = 16, k_sigmas: float = 1.0,
                 h_sigmas: float = 10.0) -> None:
        self._warmup = warmup
        self._k_sigmas = k_sigmas
        self._h_sigmas = h_sigmas
        self._window: list[float] = []
        self._mean: float | None = None
        self._sigma = 0.0
        self._s = 0.0
        self._prev: float | None = None

    def observe(self, index: int, ts: float,
                total: float) -> TelemetryAnomaly | None:
        if self._prev is None:
            self._prev = total
            return None
        x = total - self._prev
        self._prev = total
        if self._mean is None:
            self._window.append(x)
            if len(self._window) >= self._warmup:
                mean = sum(self._window) / len(self._window)
                var = sum((v - mean) ** 2
                          for v in self._window) / len(self._window)
                estimate = max(math.sqrt(var), abs(mean) * 0.05,
                               0.5 * max(abs(v) for v in self._window),
                               1e-9)
                self._mean = mean
                self._sigma = max(estimate, self._sigma)
            return None
        self._s = max(0.0, self._s + x - (self._mean
                                          + self._k_sigmas * self._sigma))
        threshold = self._h_sigmas * self._sigma
        if self._s > threshold:
            score = self._s
            mean = self._mean
            self._s = 0.0
            self._window = []
            self._mean = None  # re-baseline; sigma floor carries over
            return TelemetryAnomaly(
                kind=self.kind, ts=ts, sample_index=index, value=x,
                threshold=threshold,
                message=(f"degradation rate shifted: CUSUM score "
                         f"{score:.3g} > h={threshold:.3g} (increment "
                         f"{x:.3g} cycles/sample vs reference "
                         f"{mean:.3g})"))
        deviation = abs(x - self._mean) * self._DEV_TO_SIGMA
        alpha = (self._ALPHA_UP if deviation > self._sigma
                 else self._ALPHA_DOWN)
        self._mean += alpha * (x - self._mean)
        self._sigma = max((1 - alpha) * self._sigma + alpha * deviation,
                          0.05 * abs(self._mean), 1e-9)
        return None


class PendingDriftDetector:
    """Threshold alarm on slack-pending drift.

    The limit is either configured absolutely or derived from the warmup
    window (``max(8, 4 * warmup max)``); once tripped, the detector
    re-arms only after the pending count falls back below half the
    limit, so one sustained excursion yields one alarm.
    """

    kind = "slack-pending-drift"

    def __init__(self, warmup: int = 8, limit: float | None = None) -> None:
        self._warmup = warmup
        self._limit = limit
        self._window: list[float] = []
        self._armed = True

    def observe(self, index: int, ts: float,
                pending: float) -> TelemetryAnomaly | None:
        if self._limit is None:
            self._window.append(pending)
            if len(self._window) >= self._warmup:
                self._limit = max(8.0, 4.0 * max(self._window))
            return None
        if not self._armed:
            if pending <= self._limit / 2.0:
                self._armed = True
            return None
        if pending <= self._limit:
            return None
        self._armed = False
        return TelemetryAnomaly(
            kind=self.kind, ts=ts, sample_index=index, value=pending,
            threshold=self._limit,
            message=(f"pending transfers drifted to {pending:.0f} "
                     f"(> limit {self._limit:.0f}): the gather backlog "
                     "is growing faster than releases clear it"))


# ---------------------------------------------------------------------------
# Streaming exporters
# ---------------------------------------------------------------------------

class TelemetryExporter:
    """Exporter interface: receives every captured sample, pre-downsample."""

    def on_bind(self, columns: tuple[str, ...]) -> None:  # pragma: no cover
        pass

    def on_sample(self, row: np.ndarray,
                  anomalies: Sequence[TelemetryAnomaly]) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default no-op
        pass


class JsonlExporter(TelemetryExporter):
    """Append-stream JSONL: one ``telemetry.sample`` object per sample
    (flat, column name -> value) and one ``telemetry.anomaly`` object per
    alarm, flushed per line so the stream can be tailed live."""

    def __init__(self, path) -> None:
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._columns: tuple[str, ...] = ()
        self.lines = 0

    def on_bind(self, columns: tuple[str, ...]) -> None:
        self._columns = columns

    def on_sample(self, row: np.ndarray,
                  anomalies: Sequence[TelemetryAnomaly]) -> None:
        payload = {"event": "telemetry.sample"}
        payload.update(zip(self._columns, (float(v) for v in row)))
        self._handle.write(json.dumps(payload) + "\n")
        self.lines += 1
        for anomaly in anomalies:
            self._handle.write(json.dumps(
                {"event": "telemetry.anomaly", **anomaly.as_dict()}) + "\n")
            self.lines += 1
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def prometheus_series(column: str) -> tuple[str, dict[str, str]]:
    """Map a store column to its Prometheus metric name and labels."""
    if column.startswith("chip"):
        head, _, bucket = column.partition(".")
        chip = head[4:]
        if bucket == "power_w":
            return "repro_chip_power_watts", {"chip": chip}
        return "repro_chip_residency_cycles", {"chip": chip,
                                               "bucket": bucket}
    if column.startswith("bus"):
        head, _, field_name = column.partition(".")
        bus = head[3:]
        name = {"util": "repro_bus_utilization",
                "queue_depth": "repro_bus_queue_depth"}[field_name]
        return name, {"bus": bus}
    return {
        "ts": "repro_sim_cycles",
        "requests": "repro_requests_total",
        "degradation_cycles": "repro_degradation_cycles_total",
        "slack_balance": "repro_slack_balance_cycles",
        "slack_pending": "repro_slack_pending_transfers",
        "migrations": "repro_migrations_total",
        "migration_waves": "repro_migration_waves_total",
        "power_w": "repro_power_watts",
    }[column], {}


_PROM_HELP = {
    "repro_sim_cycles": "Simulation clock at the latest sample",
    "repro_requests_total": "Arrived DMA-memory requests",
    "repro_degradation_cycles_total":
        "Head delay plus extra service cycles to date",
    "repro_slack_balance_cycles": "DMA-TA slack account balance",
    "repro_slack_pending_transfers": "Buffered (gathered) DMA transfers",
    "repro_migrations_total": "Cumulative PL page moves",
    "repro_migration_waves_total": "Distinct PL migration waves",
    "repro_power_watts": "Instantaneous memory-system power draw",
    "repro_chip_power_watts": "Instantaneous per-chip power draw",
    "repro_chip_residency_cycles": "Per-chip residency-to-date by bucket",
    "repro_bus_utilization": "Bus busy indicator (transfer on the wire)",
    "repro_bus_queue_depth": "Transfers parked in the bus FIFO",
    "repro_telemetry_samples_total": "Telemetry samples captured",
    "repro_telemetry_anomalies_total": "Online-detector alarms emitted",
}


class PrometheusExporter(TelemetryExporter):
    """Latest-sample holder rendering Prometheus text exposition.

    ``render()`` (served at ``/metrics`` by
    :class:`repro.obs.serve.TelemetryServer`) groups series by metric
    family with ``# HELP`` / ``# TYPE`` headers; ``*_total`` families are
    counters (they are cumulative in the simulation), everything else a
    gauge.
    """

    def __init__(self) -> None:
        self._columns: tuple[str, ...] = ()
        self._latest: np.ndarray | None = None
        self.samples = 0
        self.anomalies = 0
        self._lock = threading.Lock()

    def on_bind(self, columns: tuple[str, ...]) -> None:
        self._columns = columns

    def on_sample(self, row: np.ndarray,
                  anomalies: Sequence[TelemetryAnomaly]) -> None:
        with self._lock:
            self._latest = row.copy()
            self.samples += 1
            self.anomalies += len(anomalies)

    def render(self) -> str:
        with self._lock:
            latest = self._latest
            samples = self.samples
            anomalies = self.anomalies
        families: dict[str, list[str]] = {}
        order: list[str] = []
        if latest is not None:
            for column, value in zip(self._columns, latest):
                name, labels = prometheus_series(column)
                if name not in families:
                    families[name] = []
                    order.append(name)
                if labels:
                    label_text = ",".join(
                        f'{k}="{v}"' for k, v in labels.items())
                    series = f"{name}{{{label_text}}}"
                else:
                    series = name
                families[name].append(f"{series} {float(value):g}")
        for name, value in (("repro_telemetry_samples_total", samples),
                            ("repro_telemetry_anomalies_total", anomalies)):
            families[name] = [f"{name} {value}"]
            order.append(name)
        lines: list[str] = []
        for name in order:
            kind = "counter" if name.endswith("_total") else "gauge"
            lines.append(f"# HELP {name} {_PROM_HELP.get(name, name)}")
            lines.append(f"# TYPE {name} {kind}")
            lines.extend(families[name])
        return "\n".join(lines) + "\n"


class SseBroker(TelemetryExporter):
    """Fan-out queue bridge for the ``/events`` Server-Sent-Events feed.

    Each subscriber gets a bounded queue of ``(event, json-payload)``
    pairs; slow consumers drop oldest-first rather than stalling the
    simulation thread. ``close()`` wakes every subscriber with a ``None``
    sentinel.
    """

    def __init__(self, max_queued: int = 256) -> None:
        self._max_queued = max_queued
        self._subscribers: list[queue.Queue] = []
        self._columns: tuple[str, ...] = ()
        self._lock = threading.Lock()
        self.closed = False

    def on_bind(self, columns: tuple[str, ...]) -> None:
        self._columns = columns

    def subscribe(self) -> queue.Queue:
        subscriber: queue.Queue = queue.Queue(maxsize=self._max_queued)
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: queue.Queue) -> None:
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def _publish(self, item) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            while True:
                try:
                    subscriber.put_nowait(item)
                    break
                except queue.Full:
                    try:
                        subscriber.get_nowait()
                    except queue.Empty:  # pragma: no cover - race only
                        break

    def publish(self, event: str, payload: str) -> None:
        """Fan one already-serialised SSE event out to every subscriber.

        The sample path goes through :meth:`on_sample`; this is the
        generic entry point other producers (the fleet collector) use to
        ride the same bounded drop-oldest queues.
        """
        self._publish((event, payload))

    def on_sample(self, row: np.ndarray,
                  anomalies: Sequence[TelemetryAnomaly]) -> None:
        payload = dict(zip(self._columns, (float(v) for v in row)))
        self._publish(("sample", json.dumps(payload)))
        for anomaly in anomalies:
            self._publish(("anomaly", json.dumps(anomaly.as_dict())))

    def close(self) -> None:
        self.closed = True
        self._publish(None)


# ---------------------------------------------------------------------------
# The sampler
# ---------------------------------------------------------------------------

class TelemetrySampler:
    """Per-epoch read-only sampler attached to one engine run.

    Pass an instance as ``simulate(..., telemetry=sampler)``; the engine
    calls :meth:`bind` at construction and :meth:`sample` at each
    telemetry event plus once at the end of the run. A sampler is
    single-use — bind a fresh one per run.
    """

    def __init__(self, config: TelemetryConfig | None = None,
                 exporters: Sequence[TelemetryExporter] = ()) -> None:
        self.config = config or TelemetryConfig()
        self.exporters = list(exporters)
        self.store: TelemetryStore | None = None
        self.columns: tuple[str, ...] = ()
        self.anomalies: list[TelemetryAnomaly] = []
        self.samples_captured = 0
        self.sample_cycles = 0.0
        self._engine = None
        self._tracer = None
        self._slack = None
        self._chips: list = []
        self._read_requests: Callable[[], float] | None = None
        self._read_bus: Callable[[int], tuple[float, float]] | None = None
        self._n_buses = 0
        self._last_migrations = 0
        self._waves = 0
        self._last_ts = -math.inf
        self._spike_at = math.inf
        self._spike_pending = 0.0
        self._cusum: CusumDetector | None = None
        self._pending: PendingDriftDetector | None = None

    # --- binding ----------------------------------------------------------

    def bind(self, engine) -> None:
        """Attach to an engine (fluid or precise) before its run starts."""
        if self._engine is not None:
            raise TelemetryError(
                "TelemetrySampler is single-use: already bound to a run")
        self._engine = engine
        self._tracer = engine.tracer
        self._slack = getattr(engine.controller, "slack", None)

        period = self.config.sample_cycles
        if period is None:
            period = (engine.controller.epoch_cycles()
                      or engine.config.alignment.epoch_cycles)
        self.sample_cycles = float(period)

        if hasattr(engine, "memory"):  # fluid
            self._chips = list(engine.memory.chips)
            self._read_requests = engine._served_requests
            buses = engine.buses

            def read_bus(bus_id: int) -> tuple[float, float]:
                bus = buses[bus_id]
                busy = 1.0 if (bus.current is not None or bus.members) else 0.0
                return busy, float(len(bus.queue))
        else:  # precise
            self._chips = list(engine.chips)
            self._read_requests = engine._arrived_requests
            current, fifo = engine._bus_current, engine._bus_fifo

            def read_bus(bus_id: int) -> tuple[float, float]:
                busy = 1.0 if current[bus_id] is not None else 0.0
                return busy, float(len(fifo[bus_id]))
        self._read_bus = read_bus
        self._n_buses = engine.config.buses.count

        columns = list(SCALAR_COLUMNS)
        for chip in self._chips:
            columns.append(f"chip{chip.chip_id}.power_w")
            columns.extend(f"chip{chip.chip_id}.{bucket}"
                           for bucket in RESIDENCY_BUCKETS)
        for bus_id in range(self._n_buses):
            columns.append(f"bus{bus_id}.util")
            columns.append(f"bus{bus_id}.queue_depth")
        self.columns = tuple(columns)
        self.store = TelemetryStore(self.columns,
                                    capacity=self.config.capacity)

        if self.config.inject_spike_cycles > 0:
            self._spike_at = (self.config.inject_spike_at_frac
                              * engine.trace.duration_cycles)
            self._spike_pending = self.config.inject_spike_cycles
        if self.config.detectors:
            self._cusum = CusumDetector(
                warmup=self.config.cusum_warmup,
                k_sigmas=self.config.cusum_k_sigmas,
                h_sigmas=self.config.cusum_h_sigmas)
            self._pending = PendingDriftDetector(
                warmup=self.config.pending_warmup,
                limit=self.config.pending_limit)
        for exporter in self.exporters:
            exporter.on_bind(self.columns)

    # --- sampling ---------------------------------------------------------

    def sample(self, now: float, final: bool = False) -> None:
        """Capture one read-only snapshot of the bound engine at ``now``."""
        engine = self._engine
        if engine is None or self.store is None:
            raise TelemetryError("sample() before bind(): attach the "
                                 "sampler via simulate(telemetry=...)")
        if final and now <= self._last_ts:
            return  # the last periodic sample already covered the end
        self._last_ts = now

        row = np.zeros(len(self.columns))
        row[_I_TS] = now
        row[_I_REQ] = requests = self._read_requests()
        degradation = engine.head_delay_total + engine.extra_service_total
        if self._spike_pending and now >= self._spike_at:
            degradation += self._spike_pending
            self._spike_pending = 0.0
        row[_I_DEG] = degradation
        row[_I_BAL] = (self._slack.slack(requests)
                       if self._slack is not None else 0.0)
        row[_I_PEND] = pending = float(engine.controller.pending_count())
        migrations = int(engine.migrations)
        if migrations > self._last_migrations:
            self._waves += 1
            self._last_migrations = migrations
        row[_I_MIG] = float(migrations)
        row[_I_WAVES] = float(self._waves)

        base = len(SCALAR_COLUMNS)
        total_power = 0.0
        for chip in self._chips:
            buckets, power = chip.observe(now)
            row[base] = power
            total_power += power
            for offset, bucket in enumerate(RESIDENCY_BUCKETS):
                row[base + 1 + offset] = buckets[bucket]
            base += 1 + len(RESIDENCY_BUCKETS)
        row[_I_POWER] = total_power
        for bus_id in range(self._n_buses):
            util, depth = self._read_bus(bus_id)
            row[base] = util
            row[base + 1] = depth
            base += 2

        index = self.samples_captured
        self.samples_captured += 1

        fresh: list[TelemetryAnomaly] = []
        if self._cusum is not None:
            alarm = self._cusum.observe(index, now, degradation)
            if alarm is not None:
                fresh.append(alarm)
        if self._pending is not None:
            alarm = self._pending.observe(index, now, pending)
            if alarm is not None:
                fresh.append(alarm)
        for anomaly in fresh:
            self.anomalies.append(anomaly)
            if self._tracer is not None:
                self._tracer.instant(now, "telemetry.anomaly", TRACK_SIM,
                                     anomaly.as_dict())

        self.store.append(row)
        for exporter in self.exporters:
            exporter.on_sample(row, fresh)

    # --- teardown / convenience ------------------------------------------

    def close(self) -> None:
        for exporter in self.exporters:
            exporter.close()

    def series(self, name: str) -> tuple[np.ndarray, np.ndarray]:
        """(ts, values) arrays for one retained column."""
        if self.store is None:
            raise TelemetryError("series() before bind()")
        snapshot = self.store.snapshot()
        return snapshot.column("ts"), snapshot.column(name)


__all__ = [
    "RESIDENCY_BUCKETS", "SCALAR_COLUMNS",
    "TelemetryConfig", "TelemetryStore", "TelemetrySnapshot",
    "TelemetrySampler", "TelemetryAnomaly",
    "CusumDetector", "PendingDriftDetector",
    "TelemetryExporter", "JsonlExporter", "PrometheusExporter",
    "SseBroker", "prometheus_series",
]
