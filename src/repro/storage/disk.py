"""A mechanical disk model (the DiskSim substitute).

Models the latency components that matter for when a disk DMA can begin:
head positioning (seek distance-dependent), rotational delay, media
transfer, a small on-disk cache, and FIFO queueing at the disk. The
absolute numbers follow a 15k-RPM enterprise drive of the paper's era
(e.g. Seagate Cheetah 15K.3): what the simulation needs from this model
is a realistic multi-millisecond, load-sensitive latency distribution.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical characteristics of one drive.

    Attributes:
        capacity_blocks: addressable blocks (8-KB blocks here).
        rpm: spindle speed.
        min_seek_ms / max_seek_ms: single-track and full-stroke seeks.
        transfer_mb_per_s: sustained media rate.
        cache_hit_probability: chance a read hits the on-disk cache
            (sequential readahead and segment reuse folded into one knob).
        cache_hit_ms: service time for an on-disk cache hit.
    """

    capacity_blocks: int = 1 << 21
    rpm: float = 15_000.0
    min_seek_ms: float = 0.2
    max_seek_ms: float = 7.0
    transfer_mb_per_s: float = 60.0
    cache_hit_probability: float = 0.1
    cache_hit_ms: float = 0.1

    def __post_init__(self) -> None:
        if self.capacity_blocks <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.rpm <= 0 or self.transfer_mb_per_s <= 0:
            raise ConfigurationError("rates must be positive")
        if not 0 <= self.cache_hit_probability <= 1:
            raise ConfigurationError("cache_hit_probability must be in [0,1]")
        if self.min_seek_ms < 0 or self.max_seek_ms < self.min_seek_ms:
            raise ConfigurationError("seek times must satisfy 0 <= min <= max")

    @property
    def full_rotation_ms(self) -> float:
        return 60_000.0 / self.rpm

    def seek_ms(self, from_block: int, to_block: int) -> float:
        """Seek time for a head move between two block addresses.

        Uses the classical square-root seek curve: short seeks are
        dominated by head settling, long seeks by the coast phase.
        """
        distance = abs(to_block - from_block) / max(1, self.capacity_blocks)
        if distance == 0:
            return 0.0
        return self.min_seek_ms + (
            self.max_seek_ms - self.min_seek_ms) * math.sqrt(distance)

    def transfer_ms(self, size_bytes: int) -> float:
        return size_bytes / (self.transfer_mb_per_s * 1e6) * 1e3


class Disk:
    """One drive with a FIFO queue and a head-position state."""

    def __init__(self, disk_id: int, params: DiskParameters | None = None,
                 seed: int = 0) -> None:
        self.disk_id = disk_id
        self.params = params or DiskParameters()
        self._rng = random.Random((seed << 8) ^ disk_id)
        self._head_block = 0
        self._free_at_ms = 0.0
        self.requests_served = 0
        self.busy_ms = 0.0

    def service_ms(self, block: int, size_bytes: int) -> float:
        """Raw service time (no queueing) for a request at ``block``."""
        params = self.params
        if self._rng.random() < params.cache_hit_probability:
            return params.cache_hit_ms + params.transfer_ms(size_bytes)
        seek = params.seek_ms(self._head_block, block)
        rotation = self._rng.uniform(0.0, params.full_rotation_ms)
        return seek + rotation + params.transfer_ms(size_bytes)

    def submit(self, now_ms: float, block: int, size_bytes: int) -> float:
        """Queue a request; returns its completion time in milliseconds."""
        start = max(now_ms, self._free_at_ms)
        service = self.service_ms(block, size_bytes)
        completion = start + service
        self._free_at_ms = completion
        self._head_block = block
        self.requests_served += 1
        self.busy_ms += service
        return completion

    def utilization(self, horizon_ms: float) -> float:
        """Fraction of the horizon the disk spent servicing requests."""
        if horizon_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / horizon_ms)
