"""The storage-server request-path model (Figure 1).

Replays a client request stream through the buffer cache and the disk
array and emits the memory trace the paper's OLTP-St trace recorded: the
network and disk DMA transfers against buffer-cache pages (storage-server
processors touch only metadata, so no processor records are produced).

Read path: parse -> cache lookup -> (hit) network DMA out of memory, or
(miss) disk read -> disk DMA into memory -> network DMA out. Write path:
network DMA into memory, write-back disk DMA when the dirty page is
evicted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.storage.cache import BufferCache
from repro.storage.disk import DiskParameters
from repro.storage.raid import StripedArray
from repro.traces.distributions import ZipfSampler, poisson_times, rank_permutation
from repro.traces.records import (
    ClientRequest,
    DMATransfer,
    SOURCE_DISK,
    SOURCE_NETWORK,
)
from repro.traces.trace import Trace


@dataclass(frozen=True)
class StorageWorkloadParams:
    """Workload knobs of the storage-server generator.

    Defaults are calibrated so the emitted trace matches the published
    OLTP-St characterisation: ~45 network and ~16.7 disk transfers per
    millisecond, and a popularity CDF where ~20% of the pages receive
    ~60% of the DMA accesses (Figure 4).

    Attributes:
        duration_ms: trace length in milliseconds.
        client_rate_per_ms: Poisson client-request arrival rate.
        write_fraction: fraction of client requests that are writes.
        num_pages: working-set size in pages.
        cache_pages: buffer-cache capacity in pages.
        zipf_alpha: page-popularity skew.
        block_bytes: transfer size (one 8-KB block per request).
        num_disks: disks in the striped array. A storage server fielding
            ~17k disk IOPS needs on the order of 64 spindles; smaller
            arrays saturate and the miss path's latency explodes.
        warmup_requests: client requests replayed through the buffer
            cache before recording starts, so the trace reflects the
            steady-state hit ratio instead of the cold-start miss storm.
        rehit_probability: probability a request re-targets one of the
            ``rehit_window`` most recently touched pages instead of a
            fresh Zipf draw. OLTP storage traffic is temporally bursty —
            hot rows, index roots, and log blocks are re-read in close
            succession — and this recency process reproduces that
            burstiness on top of the stationary Zipf skew.
        rehit_window: size of the recency pool for re-hits.
        checkpoint_interval_ms: period of the dirty-page destaging sweep.
            A write-back storage server flushes dirty buffer-cache pages
            to disk in periodic checkpoint bursts; each flushed page is a
            disk DMA reading memory out. 0 disables checkpoints (dirty
            pages then reach disk only on eviction).
        checkpoint_spacing_us: pacing between the flush DMAs inside one
            checkpoint burst (destaging is throttled so it does not
            starve foreground traffic).
        parse_us / wire_us: request parsing and SAN wire overheads,
            folded into the client response baseline.
        frequency_hz: memory clock used for the cycle time base.

    The defaults are calibrated against the published OLTP-St
    characterisation: ~45 network and ~17 disk transfers/ms, and a
    popularity CDF whose top-20% share is ~60% (Figure 4).
    """

    duration_ms: float = 50.0
    client_rate_per_ms: float = 45.0
    write_fraction: float = 0.15
    num_pages: int = 16384
    cache_pages: int = 1536
    zipf_alpha: float = 0.95
    block_bytes: int = 8192
    num_disks: int = 64
    warmup_requests: int = 30000
    rehit_probability: float = 0.4
    rehit_window: int = 8
    checkpoint_interval_ms: float = 4.0
    checkpoint_spacing_us: float = 40.0
    parse_us: float = 3.0
    wire_us: float = 40.0
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.duration_ms <= 0 or self.client_rate_per_ms < 0:
            raise ConfigurationError("duration and rate must be positive")
        if not 0 <= self.write_fraction <= 1:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if self.cache_pages <= 0 or self.num_pages <= 0:
            raise ConfigurationError("page counts must be positive")
        if self.block_bytes <= 0:
            raise ConfigurationError("block_bytes must be positive")
        if not 0 <= self.rehit_probability < 1:
            raise ConfigurationError("rehit_probability must be in [0, 1)")
        if self.rehit_window <= 0:
            raise ConfigurationError("rehit_window must be positive")
        if self.checkpoint_interval_ms < 0:
            raise ConfigurationError("checkpoint interval must be >= 0")
        if self.checkpoint_spacing_us <= 0:
            raise ConfigurationError("checkpoint spacing must be positive")


class StorageServer:
    """Generates OLTP-St-style traces through the full request path."""

    def __init__(self, params: StorageWorkloadParams | None = None,
                 seed: int = 1) -> None:
        self.params = params or StorageWorkloadParams()
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.cache = BufferCache(self.params.cache_pages)
        self.array = StripedArray(
            num_disks=self.params.num_disks,
            params=DiskParameters(),
            seed=seed,
        )

    def generate(self, name: str = "OLTP-St") -> Trace:
        """Run the request path and return the emitted memory trace."""
        p = self.params
        freq = p.frequency_hz
        cycles_per_ms = freq / 1e3
        duration = p.duration_ms * cycles_per_ms
        parse = p.parse_us * freq / 1e6
        wire = p.wire_us * freq / 1e6

        arrivals = poisson_times(
            p.client_rate_per_ms / cycles_per_ms, duration, self._rng)
        sampler = ZipfSampler(p.num_pages, p.zipf_alpha, self._rng)
        permutation = rank_permutation(p.num_pages, self._rng)
        self._warm_up(sampler, permutation)
        pages = self._sample_pages(sampler, permutation, len(arrivals))
        is_write = self._rng.random(len(arrivals)) < p.write_fraction

        records: list[DMATransfer] = []
        clients: dict[int, ClientRequest] = {}
        net_dmas = disk_dmas = 0

        if p.checkpoint_interval_ms > 0:
            step = p.checkpoint_interval_ms * cycles_per_ms
            checkpoints = [step * (i + 1)
                           for i in range(int(duration / step))]
        else:
            checkpoints = []
        next_checkpoint = 0

        for request_id, (arrival, page, write) in enumerate(
                zip(arrivals, pages, is_write)):
            while (next_checkpoint < len(checkpoints)
                   and checkpoints[next_checkpoint] <= arrival):
                disk_dmas += self._checkpoint(
                    checkpoints[next_checkpoint], records)
                next_checkpoint += 1
            arrival = float(arrival)
            page = int(page)
            clients[request_id] = ClientRequest(
                request_id=request_id, arrival=arrival,
                base_cycles=parse + wire)
            ready = arrival + parse

            if write:
                # Network DMA writes the new block into the buffer cache.
                records.append(DMATransfer(
                    time=ready, page=page, size_bytes=p.block_bytes,
                    source=SOURCE_NETWORK, is_write=True,
                    request_id=request_id))
                net_dmas += 1
                self.cache.lookup(page)  # metadata check (counts stats)
                evicted = self.cache.insert(page, dirty=True)
                disk_dmas += self._write_back(evicted, ready, records)
                continue

            if self.cache.lookup(page):
                # Hit: data flows straight out of memory.
                records.append(DMATransfer(
                    time=ready, page=page, size_bytes=p.block_bytes,
                    source=SOURCE_NETWORK, is_write=False,
                    request_id=request_id))
                net_dmas += 1
                continue

            # Miss: disk read -> disk DMA into memory -> network DMA out.
            ready_ms = ready / cycles_per_ms
            completion_ms = self.array.submit(ready_ms, page, p.block_bytes)
            disk_time = completion_ms * cycles_per_ms
            records.append(DMATransfer(
                time=disk_time, page=page, size_bytes=p.block_bytes,
                source=SOURCE_DISK, is_write=True, request_id=request_id))
            disk_dmas += 1
            net_time = disk_time + parse
            records.append(DMATransfer(
                time=net_time, page=page, size_bytes=p.block_bytes,
                source=SOURCE_NETWORK, is_write=False,
                request_id=request_id))
            net_dmas += 1
            evicted = self.cache.insert(page, dirty=False)
            disk_dmas += self._write_back(evicted, net_time, records)

        for checkpoint in checkpoints[next_checkpoint:]:
            disk_dmas += self._checkpoint(checkpoint, records)

        # Clip the tail: a miss near the horizon completes after it, and
        # keeping those records would dilute the trace's nominal rates.
        records = [r for r in records if r.time < duration]
        trace = Trace(
            name=name,
            records=list(records),
            clients=clients,
            duration_cycles=duration,
            metadata={
                "generator": "StorageServer",
                "seed": self.seed,
                "duration_ms": p.duration_ms,
                "client_rate_per_ms": p.client_rate_per_ms,
                "write_fraction": p.write_fraction,
                "num_pages": p.num_pages,
                "cache_pages": p.cache_pages,
                "zipf_alpha": p.zipf_alpha,
                "cache_hit_ratio": self.cache.hit_ratio,
                "net_dmas": net_dmas,
                "disk_dmas": disk_dmas,
                "net_rate_per_ms": net_dmas / p.duration_ms,
                "disk_rate_per_ms": disk_dmas / p.duration_ms,
            },
        )
        return trace

    def _sample_pages(self, sampler, permutation, count: int) -> list[int]:
        """Zipf draws overlaid with a recency re-hit process.

        With probability ``rehit_probability`` a request targets one of
        the most recently touched pages (temporal burstiness of OLTP
        traffic); otherwise it is a fresh Zipf draw.
        """
        p = self.params
        fresh = permutation[sampler.sample(count)]
        rehits = self._rng.random(count) < p.rehit_probability
        picks = self._rng.integers(0, p.rehit_window, size=count)
        recent: list[int] = []
        pages: list[int] = []
        for i in range(count):
            if rehits[i] and recent:
                page = recent[picks[i] % len(recent)]
            else:
                page = int(fresh[i])
            pages.append(page)
            recent.append(page)
            if len(recent) > p.rehit_window:
                recent.pop(0)
        return pages

    def _warm_up(self, sampler, permutation) -> None:
        """Replay requests through the cache until it reaches steady state.

        Only the cache's recency state is warmed; no records are emitted
        and the hit/miss statistics are reset afterwards so the trace
        metadata reflects the recorded portion alone.
        """
        p = self.params
        if p.warmup_requests <= 0:
            return
        pages = permutation[sampler.sample(p.warmup_requests)]
        writes = self._rng.random(p.warmup_requests) < p.write_fraction
        for page, write in zip(pages, writes):
            page = int(page)
            if not self.cache.lookup(page):
                self.cache.insert(page, dirty=bool(write))
            elif write:
                self.cache.mark_dirty(page)
        # The recorded portion starts just after a checkpoint: dirty
        # state from the warm-up would otherwise show up as a one-time
        # destaging burst that distorts the trace's disk-DMA rate.
        for page in self.cache.dirty_pages():
            self.cache.mark_clean(page)
        self.cache.hits = 0
        self.cache.misses = 0

    def _checkpoint(self, now: float, records: list[DMATransfer]) -> int:
        """Destage every dirty page in one paced checkpoint burst.

        Each flush reads the page out of memory via a disk DMA; the burst
        pacing models the destager's throttling. Returns the number of
        disk DMAs emitted.
        """
        p = self.params
        spacing = p.checkpoint_spacing_us * p.frequency_hz / 1e6
        flushed = 0
        for index, page in enumerate(self.cache.dirty_pages()):
            records.append(DMATransfer(
                time=now + index * spacing, page=page,
                size_bytes=p.block_bytes, source=SOURCE_DISK,
                is_write=False, request_id=None))
            self.cache.mark_clean(page)
            flushed += 1
        return flushed

    def _write_back(self, evicted: tuple[int, bool] | None, now: float,
                    records: list[DMATransfer]) -> int:
        """Emit the write-back disk DMA for a dirty eviction, if any."""
        if evicted is None:
            return 0
        page, dirty = evicted
        if not dirty:
            return 0
        # The destaging DMA reads the page out of memory shortly after
        # eviction; it belongs to no client request.
        records.append(DMATransfer(
            time=now + 1.0, page=page,
            size_bytes=self.params.block_bytes,
            source=SOURCE_DISK, is_write=False, request_id=None))
        return 1
