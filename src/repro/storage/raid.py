"""A striped disk array (RAID-0 style) over the mechanical disk model."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.storage.disk import Disk, DiskParameters


class StripedArray:
    """Blocks striped round-robin across several disks.

    The array maps a logical block to ``(disk, physical block)`` by simple
    striping, which both balances load and keeps per-disk locality for
    sequential runs — enough fidelity for the latency distributions the
    trace generators need.
    """

    def __init__(self, num_disks: int = 8,
                 params: DiskParameters | None = None, seed: int = 0) -> None:
        if num_disks <= 0:
            raise ConfigurationError("need at least one disk")
        self.disks = [Disk(i, params=params, seed=seed) for i in range(num_disks)]

    @property
    def num_disks(self) -> int:
        return len(self.disks)

    def locate(self, logical_block: int) -> tuple[int, int]:
        """``(disk index, physical block)`` of a logical block."""
        return (logical_block % self.num_disks,
                logical_block // self.num_disks)

    def submit(self, now_ms: float, logical_block: int,
               size_bytes: int) -> float:
        """Queue a request; returns its completion time in milliseconds."""
        disk_index, physical = self.locate(logical_block)
        return self.disks[disk_index].submit(now_ms, physical, size_bytes)

    def mean_utilization(self, horizon_ms: float) -> float:
        return sum(d.utilization(horizon_ms) for d in self.disks) / self.num_disks
