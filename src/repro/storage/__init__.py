"""Data-server substrate: disks, buffer cache, and the server models.

These components replace the pieces of the paper's testbed we do not
have: DiskSim is substituted by a mechanical disk model with per-disk
FIFO queues (:mod:`repro.storage.disk`, :mod:`repro.storage.raid`), and
the production IBM storage/database servers are substituted by request-
path models (:mod:`repro.storage.server`, :mod:`repro.storage.database`)
that emit the same kinds of memory traces the paper collected (Figure 1's
access path, Table 2's contents).
"""

from repro.storage.disk import Disk, DiskParameters
from repro.storage.raid import StripedArray
from repro.storage.cache import BufferCache
from repro.storage.server import StorageServer, StorageWorkloadParams
from repro.storage.database import DatabaseServer, DatabaseWorkloadParams

__all__ = [
    "Disk",
    "DiskParameters",
    "StripedArray",
    "BufferCache",
    "StorageServer",
    "StorageWorkloadParams",
    "DatabaseServer",
    "DatabaseWorkloadParams",
]
