"""The database-server request-path model (OLTP-Db substitute).

A database server keeps its working set in the buffer pool, so client
transactions produce *processor* accesses (index walks, tuple reads,
logging) interleaved with *network* DMA transfers of result blocks —
no disk traffic at the paper's timescale. The published OLTP-Db trace
has network DMAs at 100 transfers/ms and processor accesses at
23,300 accesses/ms — an average of 233 processor accesses per transfer —
which these defaults reproduce.

Processor accesses are emitted as bursts: part of them precede the
result transfer (the transaction's reads), and part land *during* the
transfer window (result verification, logging), which is what lets them
soak up the active-idle cycles between the transfer's DMA-memory
requests — the effect Figure 9 quantifies.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.traces.distributions import ZipfSampler, poisson_times, rank_permutation
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst, SOURCE_NETWORK
from repro.traces.trace import Trace

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class DatabaseWorkloadParams:
    """Workload knobs of the database-server generator.

    Attributes:
        duration_ms: trace length.
        txn_rate_per_ms: Poisson transaction rate (one result transfer
            each, so this is also the network DMA rate).
        proc_accesses_per_txn: processor cache-line accesses per
            transaction (233 in OLTP-Db).
        pages_per_txn: pages a transaction reads (index + heap pages).
        during_transfer_fraction: share of the processor accesses that
            land inside the result transfer's window.
        num_pages: buffer-pool working set.
        zipf_alpha: page-popularity skew.
        block_bytes: result-transfer size.
        burst_size: accesses per emitted ProcessorBurst record.
        parse_us / wire_us: non-memory response-time baseline. The wire
            component covers SQL parsing, optimizer time, the app-server
            round trip, and result marshalling — the parts of a TPC-C
            transaction's client-perceived response time that are not
            memory transfers. A few hundred microseconds is conservative
            for the paper's era (TPC-C response-time limits are seconds).
        io_bus_bandwidth: used to spread the "during" bursts across the
            transfer's nominal duration.
        frequency_hz: memory clock for the cycle time base.
    """

    duration_ms: float = 50.0
    txn_rate_per_ms: float = 100.0
    proc_accesses_per_txn: int = 233
    pages_per_txn: int = 4
    during_transfer_fraction: float = 0.5
    num_pages: int = 16384
    zipf_alpha: float = 0.7
    block_bytes: int = 8192
    burst_size: int = 32
    parse_us: float = 2.0
    wire_us: float = 300.0
    io_bus_bandwidth: float = units.PCIX_BANDWIDTH
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.duration_ms <= 0 or self.txn_rate_per_ms < 0:
            raise ConfigurationError("duration and rate must be positive")
        if self.proc_accesses_per_txn < 0:
            raise ConfigurationError("proc accesses must be non-negative")
        if self.pages_per_txn <= 0:
            raise ConfigurationError("pages_per_txn must be positive")
        if not 0 <= self.during_transfer_fraction <= 1:
            raise ConfigurationError(
                "during_transfer_fraction must be in [0, 1]")
        if self.burst_size <= 0:
            raise ConfigurationError("burst_size must be positive")


class DatabaseServer:
    """Generates OLTP-Db-style traces (processor + network DMA accesses)."""

    def __init__(self, params: DatabaseWorkloadParams | None = None,
                 seed: int = 2) -> None:
        self.params = params or DatabaseWorkloadParams()
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def generate(self, name: str = "OLTP-Db") -> Trace:
        p = self.params
        freq = p.frequency_hz
        cycles_per_ms = freq / 1e3
        duration = p.duration_ms * cycles_per_ms
        parse = p.parse_us * freq / 1e6
        wire = p.wire_us * freq / 1e6
        transfer_cycles = p.block_bytes / (p.io_bus_bandwidth / freq)

        arrivals = poisson_times(
            p.txn_rate_per_ms / cycles_per_ms, duration, self._rng)
        sampler = ZipfSampler(p.num_pages, p.zipf_alpha, self._rng)
        page_ids = rank_permutation(p.num_pages, self._rng)

        records: list[DMATransfer | ProcessorBurst] = []
        clients: dict[int, ClientRequest] = {}
        proc_total = 0

        for request_id, arrival in enumerate(arrivals):
            arrival = float(arrival)
            pages = page_ids[sampler.sample(p.pages_per_txn)]
            result_page = int(pages[-1])
            clients[request_id] = ClientRequest(
                request_id=request_id, arrival=arrival,
                base_cycles=parse + wire)

            # Phase 1: transaction processing — index/heap walks before
            # the result is shipped, spread over a short think window.
            # The result page itself is excluded here: the processor
            # reads index and heap pages to *locate* the result block,
            # which is then moved untouched by the network DMA.
            before = int(round(
                p.proc_accesses_per_txn * (1 - p.during_transfer_fraction)))
            during = p.proc_accesses_per_txn - before
            think = parse + 2.0 * transfer_cycles
            walk_pages = pages[:-1] if len(pages) > 1 else pages
            proc_total += self._emit_bursts(
                records, walk_pages, arrival + parse, think, before)

            # Phase 2: the result transfer, with concurrent processor work
            # on the same page (logging, result verification).
            dma_time = arrival + parse + think
            records.append(DMATransfer(
                time=dma_time, page=result_page, size_bytes=p.block_bytes,
                source=SOURCE_NETWORK, is_write=False,
                request_id=request_id))
            proc_total += self._emit_bursts(
                records, np.array([result_page]),
                dma_time + 0.1 * transfer_cycles,
                0.8 * transfer_cycles, during)

        duration = max(duration, max((r.time for r in records), default=0.0))
        logger.debug("database workload: %d transactions, %d proc "
                     "accesses over %.1f ms (seed=%d)", len(arrivals),
                     proc_total, p.duration_ms, self.seed)
        return Trace(
            name=name,
            records=records,
            clients=clients,
            duration_cycles=duration,
            metadata={
                "generator": "DatabaseServer",
                "seed": self.seed,
                "duration_ms": p.duration_ms,
                "txn_rate_per_ms": p.txn_rate_per_ms,
                "proc_accesses_per_txn": p.proc_accesses_per_txn,
                "num_pages": p.num_pages,
                "zipf_alpha": p.zipf_alpha,
                "proc_accesses": proc_total,
                "proc_rate_per_ms": proc_total / p.duration_ms,
                "net_rate_per_ms": len(arrivals) / p.duration_ms,
            },
        )

    def _emit_bursts(self, records: list, pages: np.ndarray, start: float,
                     window: float, count: int) -> int:
        """Emit ``count`` accesses as bursts spread over ``[start, start+window)``."""
        if count <= 0:
            return 0
        p = self.params
        emitted = 0
        num_bursts = max(1, -(-count // p.burst_size))
        per_burst = count // num_bursts
        remainder = count - per_burst * num_bursts
        for i in range(num_bursts):
            burst_count = per_burst + (1 if i < remainder else 0)
            if burst_count <= 0:
                continue
            page = int(pages[i % len(pages)])
            time = start + window * (i / num_bursts)
            records.append(ProcessorBurst(
                time=time, page=page, count=burst_count,
                window_cycles=0.0))
            emitted += burst_count
        return emitted
