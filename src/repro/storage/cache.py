"""The main-memory buffer cache of a data server (Figure 1).

An LRU cache of page frames with dirty tracking: reads that hit avoid the
disk entirely (network DMA straight out of memory); reads that miss pull
the page in via a disk DMA; writes dirty their page and are flushed to
disk when evicted (write-back). The cache's index table is the metadata
the server's processor consults — the paper keeps metadata out of scope,
and so do we: only the resulting DMA transfers reach the trace.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class BufferCache:
    """An LRU page cache with write-back dirty handling."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages <= 0:
            raise ConfigurationError("cache capacity must be positive")
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[int, bool] = OrderedDict()  # page -> dirty
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._frames)

    def __contains__(self, page: int) -> bool:
        return page in self._frames

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, page: int) -> bool:
        """True (and a recency bump) if ``page`` is resident."""
        if page in self._frames:
            self._frames.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, page: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Make ``page`` resident; returns an evicted ``(page, dirty)``.

        If the page is already resident it is bumped (and marked dirty if
        requested) with no eviction.
        """
        if page in self._frames:
            self._frames.move_to_end(page)
            if dirty:
                self._frames[page] = True
            return None
        evicted = None
        if len(self._frames) >= self.capacity_pages:
            evicted = self._frames.popitem(last=False)
        self._frames[page] = dirty
        return evicted

    def mark_dirty(self, page: int) -> bool:
        """Mark a resident page dirty; returns False if not resident."""
        if page not in self._frames:
            return False
        self._frames[page] = True
        self._frames.move_to_end(page)
        return True

    def mark_clean(self, page: int) -> None:
        """Clear a resident page's dirty bit without touching recency
        (checkpoint destaging must not distort the LRU order)."""
        if page in self._frames:
            self._frames[page] = False

    def dirty_pages(self) -> list[int]:
        """Dirty resident pages, LRU first (the checkpoint flush order)."""
        return [page for page, dirty in self._frames.items() if dirty]

    def resident_pages(self) -> list[int]:
        """Pages currently cached, LRU first."""
        return list(self._frames)
