"""Unit conversions used throughout the simulator.

The simulator's time base is **memory cycles** (floats) at the configured
memory frequency; the canonical default is the 1600-MHz RDRAM of the paper,
where one cycle is 0.625 ns. Energy is carried in **joules** and power in
**watts** internally; the constructors below accept the milliwatt values the
paper's Table 1 uses.

Bandwidths are carried in **bytes per second**; helper constants provide the
paper's device numbers (PCI-X at 1.064 GB/s, RDRAM at 3.2 GB/s, DDR SDRAM at
2.1 GB/s).
"""

from __future__ import annotations

# --- SI prefixes -----------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9

NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3

# --- Bandwidths from the paper (bytes/second) ------------------------------

#: PCI-X: 133 MHz x 8 bytes wide = 1.064 GB/s (Section 3).
PCIX_BANDWIDTH = 133 * MEGA * 8

#: Plain 64-bit/66-MHz PCI for comparison experiments.
PCI_BANDWIDTH = 66 * MEGA * 8

#: RDRAM-1600: 1600 MHz x 2 bytes per cycle = 3.2 GB/s (Section 3).
RDRAM_BANDWIDTH = 1600 * MEGA * 2

#: DDR SDRAM of the era: ~2.1 GB/s (Section 3).
DDR_SDRAM_BANDWIDTH = 2.1 * GIGA

# --- Frequencies -----------------------------------------------------------

#: RDRAM memory frequency assumed by Table 1 and Figure 2(a).
RDRAM_FREQUENCY_HZ = 1600 * MEGA


def cycles_to_seconds(cycles: float, frequency_hz: float = RDRAM_FREQUENCY_HZ) -> float:
    """Convert a duration in memory cycles to seconds."""
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float = RDRAM_FREQUENCY_HZ) -> float:
    """Convert a duration in seconds to memory cycles."""
    return seconds * frequency_hz


def ns_to_cycles(nanoseconds: float, frequency_hz: float = RDRAM_FREQUENCY_HZ) -> float:
    """Convert nanoseconds to memory cycles (6 ns -> 9.6 cycles at 1600 MHz)."""
    return nanoseconds * NANO * frequency_hz


def cycles_to_ns(cycles: float, frequency_hz: float = RDRAM_FREQUENCY_HZ) -> float:
    """Convert memory cycles to nanoseconds."""
    return cycles / frequency_hz / NANO


def mw_to_watts(milliwatts: float) -> float:
    """Convert the paper's milliwatt figures to watts."""
    return milliwatts * MILLI


def energy_joules(power_watts: float, cycles: float,
                  frequency_hz: float = RDRAM_FREQUENCY_HZ) -> float:
    """Energy in joules consumed at ``power_watts`` for ``cycles`` cycles."""
    return power_watts * cycles_to_seconds(cycles, frequency_hz)


def joules_to_mj(joules: float) -> float:
    """Convert joules to millijoules (the natural scale of trace runs)."""
    return joules / MILLI


def bandwidth_bytes_per_cycle(bandwidth_bytes_per_s: float,
                              frequency_hz: float = RDRAM_FREQUENCY_HZ) -> float:
    """Express a bandwidth as bytes moved per memory cycle.

    The RDRAM default gives 2.0 bytes/cycle for the memory itself and
    ~0.665 bytes/cycle for a PCI-X bus, which yields the paper's 4-cycle
    serve / 12-cycle period geometry for 8-byte DMA-memory requests.
    """
    return bandwidth_bytes_per_s / frequency_hz
