"""The memory subsystem: chips, layouts, and the aggregate system.

:class:`~repro.memory.chip.FluidChip` is the fluid-engine chip model — a
power-state machine whose energy accrues in closed form between
change-points. :mod:`repro.memory.address` provides the static page
layouts; dynamic popularity-based layout lives in :mod:`repro.core.layout`.
"""

from repro.memory.address import (
    PageLayout,
    SequentialLayout,
    InterleavedLayout,
    RandomLayout,
    MutableLayout,
)
from repro.memory.chip import FluidChip, ChipRates
from repro.memory.system import MemorySystem

__all__ = [
    "PageLayout",
    "SequentialLayout",
    "InterleavedLayout",
    "RandomLayout",
    "MutableLayout",
    "FluidChip",
    "ChipRates",
    "MemorySystem",
]
