"""The aggregate memory system: all chips plus the page layout."""

from __future__ import annotations

from repro.config import MemoryConfig
from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.energy.policies import PowerPolicy
from repro.errors import LayoutError
from repro.memory.address import PageLayout, RandomLayout
from repro.memory.chip import FluidChip


class MemorySystem:
    """All memory chips of the simulated machine plus their page layout.

    The layout may be replaced or mutated at run time (the PL technique
    swaps in a :class:`~repro.memory.address.MutableLayout` and edits it at
    interval boundaries); chip objects are stable for a simulation's life.
    """

    def __init__(
        self,
        config: MemoryConfig,
        policy: PowerPolicy,
        layout: PageLayout | None = None,
        start_asleep: bool = True,
    ) -> None:
        self.config = config
        self.layout = layout or RandomLayout(
            config.num_chips, config.pages_per_chip, seed=0)
        if self.layout.num_chips != config.num_chips:
            raise LayoutError("layout chip count does not match memory config")
        if self.layout.pages_per_chip != config.pages_per_chip:
            raise LayoutError("layout page capacity does not match memory config")
        self.chips = [
            FluidChip(i, config.power_model, policy, start_asleep=start_asleep)
            for i in range(config.num_chips)
        ]

    def chip_of_page(self, page: int) -> FluidChip:
        """The chip currently holding logical ``page``."""
        return self.chips[self.layout.chip_of(page)]

    def advance_all(self, now: float) -> None:
        """Bring every chip's accounting up to ``now``."""
        for chip in self.chips:
            chip.advance(now)

    def total_energy(self) -> EnergyBreakdown:
        """Aggregate energy breakdown across all chips."""
        total = EnergyBreakdown()
        for chip in self.chips:
            total.add(chip.energy)
        return total

    def total_time(self) -> TimeBreakdown:
        """Aggregate time breakdown across all chips."""
        total = TimeBreakdown()
        for chip in self.chips:
            total.add(chip.time)
        return total

    def total_wakes(self) -> int:
        """Number of low-power -> ACTIVE transitions across all chips."""
        return sum(chip.wake_count for chip in self.chips)
