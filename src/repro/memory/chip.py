"""The fluid-engine chip model.

A :class:`FluidChip` is a power-state machine whose energy accrues in
closed form between *change-points* (the only moments the engine touches
it). Two regimes exist:

* **Busy** — at least one stream (DMA transfer, processor burst, or
  migration copy) is attached. The chip is ACTIVE; the engine sets the
  current serving rates (fractions of chip capacity per stream kind) and
  :meth:`advance` splits elapsed cycles into serving / idle buckets.
  Active-idle cycles are classified as ``idle_dma`` while a DMA transfer
  is in flight (the paper's dominant waste) and ``idle_threshold``
  otherwise.
* **Idle** — no streams. The chip walks the low-level policy's descent
  profile (threshold wait -> transition -> residency -> ...), all of which
  is a deterministic, precomputed piecewise schedule, so no events are
  needed: :meth:`advance` simply integrates the profile.

Waking a sleeping chip charges the upward-transition time and energy and
returns the cycle at which the chip can serve again.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.energy.accounting import EnergyBreakdown, TimeBreakdown
from repro.energy.policies import PowerPolicy
from repro.energy.states import PowerModel, PowerState
from repro.errors import SimulationError
from repro.obs.events import chip_track

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer

_INF = math.inf

# Idle-profile segment buckets.
_SEG_ACTIVE_IDLE = "idle_threshold"
_SEG_TRANSITION = "transition"
_SEG_LOW_POWER = "low_power"


@dataclass(frozen=True)
class _IdleSegment:
    """One piece of the idle descent profile, in offsets from idle start."""

    start: float
    end: float
    bucket: str
    power_watts: float
    state: PowerState
    # For transition segments: the state being entered.
    target: PowerState | None = None


@dataclass
class ChipRates:
    """Current serving rates as fractions of chip capacity."""

    dma: float = 0.0
    proc: float = 0.0
    migration: float = 0.0

    @property
    def busy_fraction(self) -> float:
        return self.dma + self.proc + self.migration


class FluidChip:
    """One independently power-managed memory chip (fluid model)."""

    def __init__(
        self,
        chip_id: int,
        model: PowerModel,
        policy: PowerPolicy,
        start_asleep: bool = True,
    ) -> None:
        self.chip_id = chip_id
        self.model = model
        self.policy = policy
        self.energy = EnergyBreakdown()
        self.time = TimeBreakdown()
        self.wake_count = 0
        #: When set (by the engine) to a list, busy intervals are recorded
        #: as ``(start, end, serving_fraction)`` tuples for timeline
        #: rendering; idle periods are implicit gaps.
        self.timeline: list[tuple[float, float, float]] | None = None
        #: Set by the engine when tracing: power-state residency spans
        #: are emitted on the chip's track. ``None`` = no tracing; every
        #: instrumentation site is a single ``is not None`` check.
        self.tracer: Tracer | None = None
        #: ``"from->to"`` power-state transition counts (both directions).
        self.transition_counts: dict[str, int] = {}
        self._track = chip_track(chip_id)

        self._schedule = policy.schedule(model)
        self._profile = self._build_profile()
        self._time = 0.0
        self._busy = False
        self._has_dma_stream = False
        self.rates = ChipRates()

        # Idle bookkeeping: offset into the profile = now - _idle_since.
        if start_asleep and self._profile:
            # Begin parked in the deepest state the policy reaches, as a
            # long-idle server would be at trace start.
            self._idle_since = -self._profile[-1].start
        else:
            self._idle_since = 0.0

    # ------------------------------------------------------------------
    # Idle descent profile
    # ------------------------------------------------------------------

    def _build_profile(self) -> list[_IdleSegment]:
        """Precompute the descent profile for one idle period.

        Offsets are measured from the moment the chip became idle. The
        profile always ends with an unbounded segment (the deepest state
        the schedule reaches, or ACTIVE idle forever for an always-on
        policy). Transitions between low-power states are charged at the
        target state's ACTIVE->state cost (Table 1 lists only those).
        """
        segments: list[_IdleSegment] = []
        cursor = 0.0
        state = PowerState.ACTIVE
        for threshold, target in self._schedule:
            start = max(threshold, cursor)
            if start > cursor:
                bucket = _SEG_ACTIVE_IDLE if state is PowerState.ACTIVE else _SEG_LOW_POWER
                segments.append(_IdleSegment(
                    cursor, start, bucket, self.model.power(state), state))
            down = self.model.downward[target]
            if down.time_cycles > 0:
                segments.append(_IdleSegment(
                    start, start + down.time_cycles, _SEG_TRANSITION,
                    down.power_watts, state, target=target))
            cursor = start + down.time_cycles
            state = target
        bucket = _SEG_ACTIVE_IDLE if state is PowerState.ACTIVE else _SEG_LOW_POWER
        segments.append(_IdleSegment(
            cursor, _INF, bucket, self.model.power(state), state))
        return segments

    def _segment_at(self, offset: float) -> _IdleSegment:
        for segment in self._profile:
            if offset < segment.end:
                return segment
        return self._profile[-1]

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def has_dma_stream(self) -> bool:
        return self._has_dma_stream

    def state_at(self, now: float) -> PowerState:
        """The chip's power state at ``now`` (ACTIVE while busy/waking)."""
        if self._busy or now < self._time:
            return PowerState.ACTIVE
        segment = self._segment_at(now - self._idle_since)
        if segment.bucket == _SEG_TRANSITION:
            # Mid-descent: report the state being left (still draining).
            return segment.state
        return segment.state

    def is_low_power(self, now: float) -> bool:
        """True if a request arriving at ``now`` would find the chip in a
        low-power mode (the DMA-TA buffering condition, Section 4.1.1)."""
        return self.state_at(now) is not PowerState.ACTIVE

    # ------------------------------------------------------------------
    # Accrual
    # ------------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Accrue energy and time from the last change-point to ``now``.

        A no-op when ``now`` does not move past the chip's clock — which
        legitimately happens during a wake window, whose whole transition
        cost was charged up front by :meth:`wake`.
        """
        if now <= self._time:
            return
        delta = now - self._time
        if self._busy:
            self._accrue_busy(delta)
        else:
            self._accrue_idle(self._time, now)
        self._time = now

    def _count_transition(self, source: PowerState, target: PowerState) -> None:
        edge = f"{source.value}->{target.value}"
        self.transition_counts[edge] = self.transition_counts.get(edge, 0) + 1

    def _accrue_busy(self, delta: float) -> None:
        power = self.model.active_power
        seconds = delta / self.model.frequency_hz
        rates = self.rates
        busy = min(1.0, rates.busy_fraction)
        if self.timeline is not None and delta > 0:
            self.timeline.append((self._time, self._time + delta, busy))
        idle_fraction = max(0.0, 1.0 - busy)
        if self.tracer is not None and delta > 0:
            idle_bucket = ("idle_dma" if self._has_dma_stream
                           else "idle_threshold")
            # The nested joules dict uses the exact expressions of the
            # accrual below, so the audit ledger's replay is
            # bit-comparable with the chip's own accumulation.
            self.tracer.span(self._time, delta, "active", self._track, {
                "serving_dma": delta * rates.dma,
                "serving_proc": delta * rates.proc,
                "migration": delta * rates.migration,
                idle_bucket: delta * idle_fraction,
                "joules": {
                    "serving_dma": power * seconds * rates.dma,
                    "serving_proc": power * seconds * rates.proc,
                    "migration": power * seconds * rates.migration,
                    idle_bucket: power * seconds * idle_fraction,
                },
            })

        self.time.serving_dma += delta * rates.dma
        self.time.serving_proc += delta * rates.proc
        self.time.migration += delta * rates.migration
        self.energy.serving_dma += power * seconds * rates.dma
        self.energy.serving_proc += power * seconds * rates.proc
        self.energy.migration += power * seconds * rates.migration

        idle_cycles = delta * idle_fraction
        idle_joules = power * seconds * idle_fraction
        if self._has_dma_stream:
            self.time.idle_dma += idle_cycles
            self.energy.idle_dma += idle_joules
        else:
            self.time.idle_threshold += idle_cycles
            self.energy.idle_threshold += idle_joules

    def _accrue_idle(self, start: float, end: float) -> None:
        offset_start = start - self._idle_since
        offset_end = end - self._idle_since
        for segment in self._profile:
            lo = max(segment.start, offset_start)
            hi = min(segment.end, offset_end)
            if hi <= lo:
                continue
            cycles = hi - lo
            joules = segment.power_watts * cycles / self.model.frequency_hz
            if segment.bucket == _SEG_ACTIVE_IDLE:
                self.time.idle_threshold += cycles
                self.energy.idle_threshold += joules
            elif segment.bucket == _SEG_TRANSITION:
                self.time.transition += cycles
                self.energy.transition += joules
                if segment.target is not None and lo < segment.end <= hi:
                    # The downward transition completed inside this span.
                    self._count_transition(segment.state, segment.target)
            else:
                self.time.low_power += cycles
                self.energy.low_power += joules
            if self.tracer is not None:
                if segment.bucket == _SEG_ACTIVE_IDLE:
                    name = "active-idle"
                elif segment.bucket == _SEG_TRANSITION:
                    name = (f"to-{segment.target.value}"
                            if segment.target is not None else "transition")
                else:
                    name = segment.state.value
                self.tracer.span(self._idle_since + lo, cycles, name,
                                 self._track, {"bucket": segment.bucket,
                                               "joules": joules})
            if segment.end >= offset_end:
                break

    def observe(self, now: float) -> tuple[dict[str, float], float]:
        """Residency-to-date buckets and instantaneous power at ``now``.

        Strictly read-only: the pending ``now - _time`` span is
        classified exactly as :meth:`advance` will classify it, but
        nothing is accrued — splitting an accrual at an observation
        point would change float rounding, and telemetry-enabled runs
        must stay bit-identical in energy. Used by the live-telemetry
        sampler only.
        """
        buckets = self.time.as_dict()
        buckets.pop("total", None)
        if now <= self._time:
            # Inside a wake window (or exactly at the chip's clock): the
            # whole transition was charged up front by wake(), so
            # nothing is pending. Report the serving-side power the
            # chip is heading for.
            if self._busy or now < self._time:
                return buckets, self.model.active_power
            return buckets, self._segment_at(
                now - self._idle_since).power_watts
        delta = now - self._time
        if self._busy:
            rates = self.rates
            idle_fraction = max(0.0, 1.0 - min(1.0, rates.busy_fraction))
            buckets["serving_dma"] += delta * rates.dma
            buckets["serving_proc"] += delta * rates.proc
            buckets["migration"] += delta * rates.migration
            idle_bucket = ("idle_dma" if self._has_dma_stream
                           else "idle_threshold")
            buckets[idle_bucket] += delta * idle_fraction
            return buckets, self.model.active_power
        offset_start = self._time - self._idle_since
        offset_end = now - self._idle_since
        for segment in self._profile:
            lo = max(segment.start, offset_start)
            hi = min(segment.end, offset_end)
            if hi <= lo:
                continue
            if segment.bucket == _SEG_ACTIVE_IDLE:
                buckets["idle_threshold"] += hi - lo
            elif segment.bucket == _SEG_TRANSITION:
                buckets["transition"] += hi - lo
            else:
                buckets["low_power"] += hi - lo
            if segment.end >= offset_end:
                break
        return buckets, self._segment_at(offset_end).power_watts

    # ------------------------------------------------------------------
    # Busy/idle transitions
    # ------------------------------------------------------------------

    def wake(self, now: float) -> float:
        """Bring the chip to ACTIVE; returns the cycle it is ready to serve.

        The caller must have called :meth:`advance` up to ``now``. The
        upward transition's time and energy are charged here; during the
        wake window the chip's clock is moved to the ready time, so
        intervening :meth:`advance` calls are no-ops.
        """
        if self._busy:
            return max(now, self._time)
        if now < self._time:
            # Already waking from an earlier call; ready at the stored time.
            return self._time

        segment = self._segment_at(now - self._idle_since)
        ready = now
        wake_joules = 0.0
        if segment.bucket == _SEG_TRANSITION and segment.target is not None:
            # Finish the downward transition, then resynchronise.
            remaining = (self._idle_since + segment.end) - now
            down = self.model.downward[segment.target]
            drain_joules = (
                down.power_watts * remaining / self.model.frequency_hz)
            self.time.transition += remaining
            self.energy.transition += drain_joules
            wake_joules += drain_joules
            ready += remaining
            self._count_transition(segment.state, segment.target)
            state = segment.target
        else:
            state = segment.state
        if state is not PowerState.ACTIVE:
            up = self.model.upward[state]
            up_joules = self.model.transition_energy(up)
            self.time.transition += up.time_cycles
            self.energy.transition += up_joules
            wake_joules += up_joules
            ready += up.time_cycles
            self.wake_count += 1
            self._count_transition(state, PowerState.ACTIVE)
        if self.tracer is not None and ready > now:
            self.tracer.span(now, ready - now, "wake", self._track,
                             {"bucket": _SEG_TRANSITION,
                              "from": state.value,
                              "joules": wake_joules})
        self._time = ready
        # The chip is ACTIVE from the ready instant: re-anchor the idle
        # profile there so a second wake issued at (or after) ready sees
        # an active chip instead of re-reading the stale descent position
        # and charging a second, phantom resynchronisation.
        self._idle_since = ready
        return ready

    def wake_latency(self, now: float) -> float:
        """Cycles a wake issued at ``now`` would take (without side effects)."""
        if self._busy or now < self._time:
            return 0.0
        segment = self._segment_at(now - self._idle_since)
        latency = 0.0
        if segment.bucket == _SEG_TRANSITION and segment.target is not None:
            latency += (self._idle_since + segment.end) - now
            state = segment.target
        else:
            state = segment.state
        if state is not PowerState.ACTIVE:
            latency += self.model.upward[state].time_cycles
        return latency

    def set_busy(self, now: float, has_dma_stream: bool, rates: ChipRates) -> None:
        """Mark the chip busy with the given serving rates from ``now`` on.

        ``now`` is clamped to the chip's clock, so calling during a wake
        window marks the chip busy from the ready time onward.
        """
        self._time = max(self._time, now)
        self._busy = True
        self._has_dma_stream = has_dma_stream
        self.rates = rates

    def set_idle(self, now: float) -> None:
        """Mark the chip idle from ``now``; restarts the descent profile."""
        self._busy = False
        self._has_dma_stream = False
        self.rates = ChipRates()
        self._idle_since = max(now, self._time)
