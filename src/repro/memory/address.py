"""Page-to-chip layouts.

The layout decides which physical chip holds each logical page and is the
knob the PL technique turns. Static layouts here serve as baselines:

* :class:`SequentialLayout` fills chips one after another, the way a
  first-touch allocator would on a fresh machine.
* :class:`InterleavedLayout` stripes consecutive pages across chips
  (round-robin), the classical performance-oriented layout.
* :class:`RandomLayout` scatters pages pseudo-randomly — a model of a
  long-running server whose buffer-cache pages have no spatial order;
  this is the default baseline layout because it makes hot pages land on
  all chips, which is precisely the situation PL fixes.
* :class:`MutableLayout` is the dynamic mapping the PL migration engine
  edits at interval boundaries.
"""

from __future__ import annotations

import abc
import random

from repro.errors import LayoutError


class PageLayout(abc.ABC):
    """Maps logical pages to chips."""

    def __init__(self, num_chips: int, pages_per_chip: int) -> None:
        if num_chips <= 0 or pages_per_chip <= 0:
            raise LayoutError("layout dimensions must be positive")
        self.num_chips = num_chips
        self.pages_per_chip = pages_per_chip

    @property
    def total_pages(self) -> int:
        return self.num_chips * self.pages_per_chip

    @abc.abstractmethod
    def chip_of(self, page: int) -> int:
        """The chip holding logical ``page``."""

    def _check(self, page: int) -> None:
        if not 0 <= page < self.total_pages:
            raise LayoutError(
                f"page {page} outside memory of {self.total_pages} pages")


class SequentialLayout(PageLayout):
    """Pages 0..P-1 on chip 0, P..2P-1 on chip 1, and so on."""

    def chip_of(self, page: int) -> int:
        self._check(page)
        return page // self.pages_per_chip


class InterleavedLayout(PageLayout):
    """Page p lives on chip ``p mod num_chips`` (round-robin striping)."""

    def chip_of(self, page: int) -> int:
        self._check(page)
        return page % self.num_chips


class RandomLayout(PageLayout):
    """A random permutation of pages onto chips (capacity-respecting).

    Deterministic for a given seed, so simulations are reproducible.
    """

    def __init__(self, num_chips: int, pages_per_chip: int, seed: int = 0) -> None:
        super().__init__(num_chips, pages_per_chip)
        rng = random.Random(seed)
        chips = [page // pages_per_chip for page in range(self.total_pages)]
        rng.shuffle(chips)
        self._chips = chips

    def chip_of(self, page: int) -> int:
        self._check(page)
        return self._chips[page]


class MutableLayout(PageLayout):
    """A layout whose page placement can be edited (used by PL migration).

    Starts from any base layout; :meth:`move` relocates one page, keeping
    per-chip occupancy within capacity. Occupancy bookkeeping is what lets
    the migration planner find free frames on destination chips.
    """

    def __init__(self, base: PageLayout) -> None:
        super().__init__(base.num_chips, base.pages_per_chip)
        self._chips = [base.chip_of(page) for page in range(base.total_pages)]
        self._occupancy = [0] * self.num_chips
        for chip in self._chips:
            self._occupancy[chip] += 1

    def chip_of(self, page: int) -> int:
        self._check(page)
        return self._chips[page]

    def occupancy(self, chip: int) -> int:
        """Number of pages currently resident on ``chip``."""
        if not 0 <= chip < self.num_chips:
            raise LayoutError(f"chip {chip} out of range")
        return self._occupancy[chip]

    def free_frames(self, chip: int) -> int:
        """Free page frames remaining on ``chip``."""
        return self.pages_per_chip - self.occupancy(chip)

    def move(self, page: int, to_chip: int) -> int:
        """Relocate ``page`` to ``to_chip``; returns the previous chip.

        Raises :class:`LayoutError` if the destination chip is full.
        """
        self._check(page)
        if not 0 <= to_chip < self.num_chips:
            raise LayoutError(f"chip {to_chip} out of range")
        source = self._chips[page]
        if source == to_chip:
            return source
        if self.free_frames(to_chip) <= 0:
            raise LayoutError(f"chip {to_chip} has no free frames")
        self._chips[page] = to_chip
        self._occupancy[source] -= 1
        self._occupancy[to_chip] += 1
        return source

    def swap(self, page_a: int, page_b: int) -> None:
        """Exchange the frames of two pages (always capacity-safe)."""
        self._check(page_a)
        self._check(page_b)
        chip_a, chip_b = self._chips[page_a], self._chips[page_b]
        self._chips[page_a], self._chips[page_b] = chip_b, chip_a
