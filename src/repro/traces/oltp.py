"""Calibrated OLTP trace generators (the real-trace substitutes).

The paper's OLTP-St and OLTP-Db traces came from production systems we do
not have. These functions produce their substitutes by running the full
server models of :mod:`repro.storage` with parameters calibrated to the
published characterisation (Table 2, Section 5.1, Figure 4):

* **OLTP-St** — network DMAs at ~45/ms, disk DMAs at ~16.7/ms, and a
  popularity CDF where ~20% of pages draw ~60% of the DMA accesses.
* **OLTP-Db** — network DMAs at ~100/ms with ~233 processor accesses per
  transfer (~23,300 accesses/ms).

See DESIGN.md section 2 for why the substitution preserves the results.
"""

from __future__ import annotations

from repro.storage.database import DatabaseServer, DatabaseWorkloadParams
from repro.storage.server import StorageServer, StorageWorkloadParams
from repro.traces.trace import Trace


def oltp_storage_trace(
    duration_ms: float = 50.0,
    seed: int = 1,
    params: StorageWorkloadParams | None = None,
) -> Trace:
    """The OLTP-St substitute: a TPC-C-like stream through the storage
    server model (buffer cache + striped disk array, Figure 1 path).

    Args:
        duration_ms: trace length (ignored when ``params`` is given).
        seed: generator seed.
        params: full workload override for custom studies.
    """
    if params is None:
        params = StorageWorkloadParams(duration_ms=duration_ms)
    return StorageServer(params, seed=seed).generate(name="OLTP-St")


def oltp_database_trace(
    duration_ms: float = 50.0,
    seed: int = 2,
    params: DatabaseWorkloadParams | None = None,
) -> Trace:
    """The OLTP-Db substitute: TPC-C-like transactions against the
    database server model (processor bursts + network result DMAs).

    Args:
        duration_ms: trace length (ignored when ``params`` is given).
        seed: generator seed.
        params: full workload override for custom studies.
    """
    if params is None:
        params = DatabaseWorkloadParams(duration_ms=duration_ms)
    return DatabaseServer(params, seed=seed).generate(name="OLTP-Db")
