"""Synthetic trace generators (Section 5.1).

``Synthetic-St`` and ``Synthetic-Db`` follow the paper's recipe directly:
Zipf page popularity with ``alpha = 1`` and Poisson DMA transfer arrivals
at 100 transfers/ms (Synthetic-Db adds processor accesses at an average
of 10,000 accesses/ms, i.e. 100 per transfer). The knobs exposed here are
exactly the sweep axes of the sensitivity study: transfer rate (Figure 8),
processor accesses per transfer (Figure 9), and the transfer geometry.
"""

from __future__ import annotations

import logging

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.traces.distributions import ZipfSampler, poisson_times, rank_permutation
from repro.traces.records import (
    ClientRequest,
    DMATransfer,
    ProcessorBurst,
    SOURCE_DISK,
    SOURCE_NETWORK,
)
from repro.traces.trace import Trace

logger = logging.getLogger(__name__)


def synthetic_storage_trace(
    duration_ms: float = 50.0,
    transfers_per_ms: float = 100.0,
    num_pages: int = 16384,
    zipf_alpha: float = 1.0,
    disk_fraction: float = 0.27,
    write_fraction: float = 0.2,
    block_bytes: int = 8192,
    mean_disk_ms: float = 5.0,
    parse_us: float = 3.0,
    wire_us: float = 40.0,
    seed: int = 11,
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
    name: str = "Synthetic-St",
) -> Trace:
    """The paper's Synthetic-St: Poisson DMA transfers over Zipf pages.

    Each transfer stands for one client request; disk-sourced transfers
    carry an exponential disk latency in the client's response baseline,
    giving the CP-Limit calibration a realistic mix of memory-bound and
    disk-bound requests.
    """
    if not 0 <= disk_fraction <= 1:
        raise ConfigurationError("disk_fraction must be in [0, 1]")
    if not 0 <= write_fraction <= 1:
        raise ConfigurationError("write_fraction must be in [0, 1]")

    rng = np.random.default_rng(seed)
    cycles_per_ms = frequency_hz / 1e3
    duration = duration_ms * cycles_per_ms
    parse = parse_us * frequency_hz / 1e6
    wire = wire_us * frequency_hz / 1e6

    times = poisson_times(transfers_per_ms / cycles_per_ms, duration, rng)
    sampler = ZipfSampler(num_pages, zipf_alpha, rng)
    pages = rank_permutation(num_pages, rng)[sampler.sample(len(times))]
    is_disk = rng.random(len(times)) < disk_fraction
    is_write = rng.random(len(times)) < write_fraction
    disk_waits = rng.exponential(mean_disk_ms * cycles_per_ms, len(times))

    records: list[DMATransfer] = []
    clients: dict[int, ClientRequest] = {}
    for request_id, (time, page, disk, write) in enumerate(
            zip(times, pages, is_disk, is_write)):
        base = parse + wire
        if disk:
            base += float(disk_waits[request_id])
        clients[request_id] = ClientRequest(
            request_id=request_id, arrival=float(time), base_cycles=base)
        records.append(DMATransfer(
            time=float(time) + parse,
            page=int(page),
            size_bytes=block_bytes,
            source=SOURCE_DISK if disk else SOURCE_NETWORK,
            is_write=bool(write),
            request_id=request_id,
        ))

    duration = max(duration, max((r.time for r in records), default=0.0))
    logger.debug("synthetic_storage_trace: %d transfers over %.1f ms "
                 "(seed=%d, %d pages)", len(records), duration_ms, seed,
                 num_pages)
    return Trace(
        name=name,
        records=list(records),
        clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "synthetic_storage_trace",
            "seed": seed,
            "duration_ms": duration_ms,
            "transfers_per_ms": transfers_per_ms,
            "num_pages": num_pages,
            "zipf_alpha": zipf_alpha,
            "disk_fraction": disk_fraction,
            "write_fraction": write_fraction,
        },
    )


def synthetic_database_trace(
    duration_ms: float = 50.0,
    transfers_per_ms: float = 100.0,
    proc_accesses_per_transfer: int = 100,
    during_transfer_fraction: float = 0.5,
    num_pages: int = 16384,
    zipf_alpha: float = 1.0,
    block_bytes: int = 8192,
    burst_size: int = 32,
    parse_us: float = 2.0,
    wire_us: float = 300.0,
    io_bus_bandwidth: float = units.PCIX_BANDWIDTH,
    seed: int = 12,
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
    name: str = "Synthetic-Db",
) -> Trace:
    """The paper's Synthetic-Db: network DMAs plus processor accesses.

    Defaults give 100 transfers/ms and 10,000 processor accesses/ms (100
    per transfer). ``proc_accesses_per_transfer`` is the Figure 9 sweep
    axis: the accesses cluster around their transfer — partly before it
    (transaction processing) and partly inside its window (logging and
    verification), where they consume the chip's active-idle cycles.
    """
    if proc_accesses_per_transfer < 0:
        raise ConfigurationError("proc accesses must be non-negative")
    if not 0 <= during_transfer_fraction <= 1:
        raise ConfigurationError("during_transfer_fraction must be in [0,1]")
    if burst_size <= 0:
        raise ConfigurationError("burst_size must be positive")

    rng = np.random.default_rng(seed)
    cycles_per_ms = frequency_hz / 1e3
    duration = duration_ms * cycles_per_ms
    parse = parse_us * frequency_hz / 1e6
    wire = wire_us * frequency_hz / 1e6
    transfer_cycles = block_bytes / (io_bus_bandwidth / frequency_hz)

    times = poisson_times(transfers_per_ms / cycles_per_ms, duration, rng)
    sampler = ZipfSampler(num_pages, zipf_alpha, rng)
    pages = rank_permutation(num_pages, rng)[sampler.sample(len(times))]

    records: list[DMATransfer | ProcessorBurst] = []
    clients: dict[int, ClientRequest] = {}
    proc_total = 0

    def emit_bursts(page: int, start: float, window: float, count: int) -> int:
        emitted = 0
        num_bursts = max(1, -(-count // burst_size))
        per_burst, remainder = divmod(count, num_bursts)
        for i in range(num_bursts):
            burst = per_burst + (1 if i < remainder else 0)
            if burst <= 0:
                continue
            records.append(ProcessorBurst(
                time=start + window * (i / num_bursts), page=page,
                count=burst))
            emitted += burst
        return emitted

    for request_id, (time, page) in enumerate(zip(times, pages)):
        time = float(time)
        page = int(page)
        clients[request_id] = ClientRequest(
            request_id=request_id, arrival=time, base_cycles=parse + wire)
        before = int(round(
            proc_accesses_per_transfer * (1 - during_transfer_fraction)))
        during = proc_accesses_per_transfer - before
        if before:
            proc_total += emit_bursts(
                page, time + parse, 2.0 * transfer_cycles, before)
        dma_time = time + parse + 2.0 * transfer_cycles
        records.append(DMATransfer(
            time=dma_time, page=page, size_bytes=block_bytes,
            source=SOURCE_NETWORK, is_write=False, request_id=request_id))
        if during:
            proc_total += emit_bursts(
                page, dma_time + 0.1 * transfer_cycles,
                0.8 * transfer_cycles, during)

    duration = max(duration, max((r.time for r in records), default=0.0))
    logger.debug("synthetic_database_trace: %d records (%d proc accesses) "
                 "over %.1f ms (seed=%d)", len(records), proc_total,
                 duration_ms, seed)
    return Trace(
        name=name,
        records=records,
        clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "synthetic_database_trace",
            "seed": seed,
            "duration_ms": duration_ms,
            "transfers_per_ms": transfers_per_ms,
            "proc_accesses_per_transfer": proc_accesses_per_transfer,
            "num_pages": num_pages,
            "zipf_alpha": zipf_alpha,
            "proc_accesses": proc_total,
            "proc_rate_per_ms": proc_total / duration_ms,
        },
    )
