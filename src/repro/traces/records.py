"""Trace record types.

Records reference *logical* pages; the simulator's page layout (static or
popularity-based) decides which physical chip a page lives on. Times are in
memory cycles from the start of the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TraceError

#: DMA source tags used by the generators and the stats module.
SOURCE_NETWORK = "network"
SOURCE_DISK = "disk"

_VALID_SOURCES = frozenset({SOURCE_NETWORK, SOURCE_DISK})


@dataclass(frozen=True, slots=True)
class DMATransfer:
    """One DMA transfer (Section 2.1): a large block moved to/from memory.

    Attributes:
        time: cycle at which the DMA engine initiates the transfer.
        page: logical page the transfer targets (page-aligned transfers).
        size_bytes: transfer size (8 KB block or 512 B sector typically).
        source: ``"network"`` or ``"disk"`` — which device performs it.
        is_write: True if the DMA writes into memory (e.g. a disk read
            filling the buffer cache), False if it reads memory out.
        bus: I/O bus index carrying the transfer, or None to let the
            simulator assign one (round-robin by device).
        request_id: client request this transfer belongs to, or None for
            background traffic.
    """

    time: float
    page: int
    size_bytes: int
    source: str = SOURCE_NETWORK
    is_write: bool = False
    bus: int | None = None
    request_id: int | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"negative record time {self.time}")
        if self.page < 0:
            raise TraceError(f"negative page id {self.page}")
        if self.size_bytes <= 0:
            raise TraceError(f"non-positive transfer size {self.size_bytes}")
        if self.source not in _VALID_SOURCES:
            raise TraceError(f"unknown DMA source {self.source!r}")
        if self.bus is not None and self.bus < 0:
            raise TraceError(f"negative bus index {self.bus}")

    def num_requests(self, request_bytes: int) -> int:
        """DMA-memory requests this transfer decomposes into."""
        return max(1, -(-self.size_bytes // request_bytes))


@dataclass(frozen=True, slots=True)
class ProcessorBurst:
    """A burst of processor cache-line accesses to one page.

    Database workloads interleave many small processor accesses with each
    DMA transfer (233 per transfer in OLTP-Db). Traces record them as
    bursts — ``count`` accesses spread uniformly over ``window_cycles`` —
    which the fluid engine consumes directly and the precise engine
    expands into individual accesses.
    """

    time: float
    page: int
    count: int = 1
    window_cycles: float = 0.0
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.time < 0:
            raise TraceError(f"negative record time {self.time}")
        if self.page < 0:
            raise TraceError(f"negative page id {self.page}")
        if self.count <= 0:
            raise TraceError(f"non-positive access count {self.count}")
        if self.window_cycles < 0:
            raise TraceError("negative burst window")


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """A client-visible request, used for CP-Limit evaluation.

    Attributes:
        request_id: id referenced by the transfers that serve the request.
        arrival: cycle the request reached the server.
        base_cycles: response-time contribution outside the memory system
            (disk positioning, wire time, request parsing); added to the
            completion of the request's last transfer to produce the
            client-perceived response time.
    """

    request_id: int
    arrival: float
    base_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise TraceError("negative client arrival")
        if self.base_cycles < 0:
            raise TraceError("negative base response time")


#: Union type of the timed records a trace may contain.
TraceRecord = DMATransfer | ProcessorBurst
