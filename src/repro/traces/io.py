"""Trace serialisation: a line-oriented JSON format.

Each line is one JSON object. The first line is a header carrying the
trace name, duration, and metadata; subsequent lines are records tagged
with a ``kind`` field (``dma``, ``proc``, or ``client``). The format
round-trips exactly through :func:`write_trace` / :func:`read_trace`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TextIO

from repro.errors import TraceError
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace

_FORMAT_VERSION = 1


def _record_to_obj(record: DMATransfer | ProcessorBurst) -> dict:
    if isinstance(record, DMATransfer):
        return {
            "kind": "dma",
            "time": record.time,
            "page": record.page,
            "size": record.size_bytes,
            "source": record.source,
            "write": record.is_write,
            "bus": record.bus,
            "req": record.request_id,
        }
    return {
        "kind": "proc",
        "time": record.time,
        "page": record.page,
        "count": record.count,
        "window": record.window_cycles,
        "write": record.is_write,
    }


def _obj_to_record(obj: dict) -> DMATransfer | ProcessorBurst:
    kind = obj.get("kind")
    if kind == "dma":
        return DMATransfer(
            time=obj["time"],
            page=obj["page"],
            size_bytes=obj["size"],
            source=obj.get("source", "network"),
            is_write=obj.get("write", False),
            bus=obj.get("bus"),
            request_id=obj.get("req"),
        )
    if kind == "proc":
        return ProcessorBurst(
            time=obj["time"],
            page=obj["page"],
            count=obj.get("count", 1),
            window_cycles=obj.get("window", 0.0),
            is_write=obj.get("write", False),
        )
    raise TraceError(f"unknown record kind {kind!r}")


def _build_record(obj: dict, line_number: int,
                  clients: dict[int, ClientRequest],
                  records: list[DMATransfer | ProcessorBurst]) -> None:
    """Turn one parsed JSON object into a client or record entry.

    Truncated or hand-edited files reach this with missing keys or
    out-of-domain values; every such failure becomes a
    :class:`~repro.errors.TraceError` naming the line, never a raw
    ``KeyError``/``TypeError`` traceback.
    """
    try:
        if obj.get("kind") == "client":
            client = ClientRequest(
                request_id=obj["id"],
                arrival=obj["arrival"],
                base_cycles=obj.get("base", 0.0),
            )
            clients[client.request_id] = client
        else:
            records.append(_obj_to_record(obj))
    except TraceError as exc:
        raise TraceError(
            f"invalid record on line {line_number}: {exc}") from exc
    except (KeyError, TypeError, ValueError) as exc:
        missing = (f"missing field {exc}" if isinstance(exc, KeyError)
                   else str(exc))
        raise TraceError(
            f"invalid record on line {line_number}: {missing}") from exc


def write_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in the JSONL trace format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        _write_stream(trace, handle)


def _write_stream(trace: Trace, handle: TextIO) -> None:
    header = {
        "kind": "header",
        "version": _FORMAT_VERSION,
        "name": trace.name,
        "duration": trace.duration_cycles,
        "metadata": trace.metadata,
    }
    handle.write(json.dumps(header) + "\n")
    for client in sorted(trace.clients.values(), key=lambda c: c.arrival):
        handle.write(json.dumps({
            "kind": "client",
            "id": client.request_id,
            "arrival": client.arrival,
            "base": client.base_cycles,
        }) + "\n")
    for record in trace.records:
        handle.write(json.dumps(_record_to_obj(record)) + "\n")


def read_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return _read_stream(handle)


def _read_stream(handle: TextIO) -> Trace:
    header_line = handle.readline()
    if not header_line:
        raise TraceError("empty trace file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TraceError(f"malformed trace header: {exc}") from exc
    if header.get("kind") != "header":
        raise TraceError("trace file does not start with a header line")
    if header.get("version") != _FORMAT_VERSION:
        raise TraceError(
            f"unsupported trace format version {header.get('version')}")

    records: list[DMATransfer | ProcessorBurst] = []
    clients: dict[int, ClientRequest] = {}
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"malformed record on line {line_number}: {exc}") from exc
        if not isinstance(obj, dict):
            raise TraceError(f"invalid record on line {line_number}: "
                             f"expected an object, got {type(obj).__name__}")
        _build_record(obj, line_number, clients, records)

    return Trace(
        name=header.get("name", "trace"),
        records=records,
        clients=clients,
        duration_cycles=header.get("duration", 0.0),
        metadata=header.get("metadata", {}),
    )
