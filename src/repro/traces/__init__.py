"""Trace data model, I/O, generators, and characterisation.

A trace is the input of every simulation: a time-sorted stream of DMA
transfer records and processor-access bursts against *logical* pages, plus
the client-request table used to evaluate client-perceived response times
(the CP-Limit of Section 5). Real-system traces are substituted by
calibrated generators (see DESIGN.md section 2): :mod:`repro.traces.oltp`
produces OLTP-St / OLTP-Db equivalents through the full server models, and
:mod:`repro.traces.synthetic` produces the Zipf+Poisson Synthetic-St /
Synthetic-Db traces exactly as Section 5.1 describes them.
"""

from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace
from repro.traces.io import read_trace, write_trace
from repro.traces.synthetic import synthetic_storage_trace, synthetic_database_trace
from repro.traces.oltp import oltp_storage_trace, oltp_database_trace
from repro.traces.stats import TraceStats, characterize, popularity_cdf
from repro.traces.replay import (
    BlockIO,
    DIALECTS,
    ReplayConfig,
    read_block_csv,
    replay_trace,
    sample_window,
)
from repro.traces.zoo import (
    ZOO,
    drift_diurnal_trace,
    flash_crowd_trace,
    kv_store_trace,
    ml_inference_trace,
    video_stream_trace,
    zoo_trace,
)
from repro.traces.transform import (
    filter_source,
    merge_traces,
    renumber_clients,
    resize_transfers,
    scale_intensity,
    strip_clients,
)

__all__ = [
    "BlockIO",
    "DIALECTS",
    "ReplayConfig",
    "ZOO",
    "read_block_csv",
    "replay_trace",
    "sample_window",
    "drift_diurnal_trace",
    "flash_crowd_trace",
    "kv_store_trace",
    "ml_inference_trace",
    "video_stream_trace",
    "zoo_trace",
    "filter_source",
    "merge_traces",
    "renumber_clients",
    "resize_transfers",
    "scale_intensity",
    "strip_clients",
    "ClientRequest",
    "DMATransfer",
    "ProcessorBurst",
    "Trace",
    "read_trace",
    "write_trace",
    "synthetic_storage_trace",
    "synthetic_database_trace",
    "oltp_storage_trace",
    "oltp_database_trace",
    "TraceStats",
    "characterize",
    "popularity_cdf",
]
