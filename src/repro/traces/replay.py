"""Block-trace replay: public storage traces as DMA arrival processes.

Every workload the simulator has consumed so far was synthesised from the
paper's two OLTP descriptions. This module closes the fidelity gap by
replaying *real* block traces — MSR-Cambridge / CloudPhysics-style CSV
files of ``(timestamp, host, disk, offset, size, read/write)`` I/Os —
through the existing :class:`~repro.traces.records.DMATransfer` /
:class:`~repro.traces.records.ProcessorBurst` /
:class:`~repro.traces.records.ClientRequest` record model:

* each block I/O becomes one page-aligned DMA transfer chain against
  logical pages chosen by a configurable offset→page layout;
* each ``(host, disk)`` pair is a namespace that can pin its traffic to
  one I/O bus (``by-disk``) or defer to the simulator's round-robin;
* processor bursts are synthesised from an I/O-to-compute ratio, so a
  replayed storage trace can stand in for a database-style workload;
* time-window sampling plus time compression squeeze multi-hour traces
  into bench-budget simulations while preserving per-bus ordering.

Malformed input never surfaces a raw ``KeyError``/``ValueError``: every
parse failure raises :class:`~repro.errors.TraceError` naming the
offending line number.
"""

from __future__ import annotations

import csv
import hashlib
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Sequence

from repro import units
from repro.errors import ConfigurationError, TraceError
from repro.traces.records import (
    ClientRequest,
    DMATransfer,
    ProcessorBurst,
    SOURCE_DISK,
    SOURCE_NETWORK,
)
from repro.traces.trace import Trace

#: Windows FILETIME tick (MSR-Cambridge timestamps): 100 ns.
_FILETIME_TICK_S = 100e-9

#: Disk sector implied by CloudPhysics-style LBA columns.
_SECTOR_BYTES = 512

#: Supported CSV dialects, in the order ``repro replay --dialect`` lists.
DIALECTS = ("msr", "cloudphysics")

#: Offset→page layout strategies.
PAGE_LAYOUTS = ("modulo", "hash")

#: Bus assignment strategies.
BUS_ASSIGNMENTS = ("by-disk", "simulator")


@dataclass(frozen=True, slots=True)
class BlockIO:
    """One parsed block-level I/O, dialect-independent.

    Attributes:
        time_s: arrival time in seconds from the start of the file's
            epoch (rebased to the trace start during replay).
        host: hostname / workload tag (``""`` when the dialect has none).
        disk: disk number within the host.
        offset: byte offset on the disk.
        size_bytes: I/O length in bytes.
        is_write: True for writes (DMA into memory), False for reads.
        latency_s: device response time when the dialect records one
            (feeds the client-request base time), else 0.
    """

    time_s: float
    host: str
    disk: int
    offset: int
    size_bytes: int
    is_write: bool
    latency_s: float = 0.0

    @property
    def namespace(self) -> str:
        """The ``(host, disk)`` identity used for layout and buses."""
        return f"{self.host}:{self.disk}"


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs of the block-trace → simulator-trace conversion.

    Attributes:
        page_bytes: logical page size; block offsets are page-aligned
            down and long I/Os split into page-sized transfers.
        num_pages: size of the logical page space the trace is folded
            into. Must not exceed the simulated memory's ``total_pages``
            or the layout would address nonexistent frames.
        page_layout: ``"modulo"`` keeps a disk's pages sequential
            (namespaces striped across the space, wrapping modulo
            ``num_pages``) — a fresh first-touch buffer cache;
            ``"hash"`` scatters them with a stable blake2 hash — a
            long-running server whose cache carries no spatial order.
        bus_assignment: ``"by-disk"`` pins each namespace to bus
            ``index % num_buses`` (disks keep their queue ordering);
            ``"simulator"`` leaves ``bus=None`` for the engine's
            round-robin.
        num_buses: bus count used by ``"by-disk"``.
        max_transfers_per_io: cap on the page-sized transfers one block
            I/O may expand into (defensive bound against multi-MB I/Os).
        time_compression: trace seconds are divided by this factor
            (1000 ⇒ one traced second replays as one simulated
            millisecond), scaling arrival density without touching
            request geometry — the replay analogue of
            :func:`repro.traces.transform.scale_intensity`.
        window_start_s / window_s: replay only the I/Os inside
            ``[window_start_s, window_start_s + window_s)``, measured in
            trace seconds *from the first I/O* (real block traces start
            at huge absolute timestamps) and before compression;
            ``window_s=None`` replays to the end.
        proc_accesses_per_io: synthesised processor cache-line accesses
            per block I/O (the I/O-to-compute ratio); emitted as one
            burst over the transfer's wire window on the same page.
        make_clients: give every block I/O a client request whose base
            time is the recorded device latency (when the dialect has
            one) — enables CP-Limit calibration on replayed traces.
        base_latency_us: client base time used when the dialect records
            no latency column.
        source: DMA source tag for the replayed transfers.
        frequency_hz: memory frequency that converts seconds to cycles.
    """

    page_bytes: int = 8192
    num_pages: int = 131_072
    page_layout: str = "modulo"
    bus_assignment: str = "by-disk"
    num_buses: int = 3
    max_transfers_per_io: int = 64
    time_compression: float = 1.0
    window_start_s: float = 0.0
    window_s: float | None = None
    proc_accesses_per_io: float = 0.0
    make_clients: bool = True
    base_latency_us: float = 50.0
    source: str = SOURCE_DISK
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.page_bytes <= 0:
            raise ConfigurationError("page_bytes must be positive")
        if self.num_pages <= 0:
            raise ConfigurationError("num_pages must be positive")
        if self.page_layout not in PAGE_LAYOUTS:
            raise ConfigurationError(
                f"unknown page_layout {self.page_layout!r}; "
                f"expected one of {PAGE_LAYOUTS}")
        if self.bus_assignment not in BUS_ASSIGNMENTS:
            raise ConfigurationError(
                f"unknown bus_assignment {self.bus_assignment!r}; "
                f"expected one of {BUS_ASSIGNMENTS}")
        if self.num_buses <= 0:
            raise ConfigurationError("num_buses must be positive")
        if self.max_transfers_per_io <= 0:
            raise ConfigurationError("max_transfers_per_io must be positive")
        if self.time_compression <= 0:
            raise ConfigurationError("time_compression must be positive")
        if self.window_start_s < 0:
            raise ConfigurationError("window_start_s must be non-negative")
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if self.proc_accesses_per_io < 0:
            raise ConfigurationError(
                "proc_accesses_per_io must be non-negative")
        if self.base_latency_us < 0:
            raise ConfigurationError("base_latency_us must be non-negative")
        if self.source not in (SOURCE_DISK, SOURCE_NETWORK):
            raise ConfigurationError(f"unknown source {self.source!r}")


# ---------------------------------------------------------------------------
# CSV parsing
# ---------------------------------------------------------------------------

def _parse_op(raw: str, line: int) -> bool:
    op = raw.strip().lower()
    if op in ("read", "r", "0"):
        return False
    if op in ("write", "w", "1"):
        return True
    raise TraceError(f"line {line}: unknown operation {raw!r} "
                     "(expected Read/Write or r/w)")


def _parse_number(raw: str, what: str, line: int,
                  minimum: float | None = None) -> float:
    try:
        value = float(raw)
    except ValueError as exc:
        raise TraceError(
            f"line {line}: bad {what} {raw!r}: not a number") from exc
    if not math.isfinite(value):
        raise TraceError(f"line {line}: bad {what} {raw!r}: not finite")
    if minimum is not None and value < minimum:
        raise TraceError(
            f"line {line}: bad {what} {raw!r}: must be >= {minimum:g}")
    return value


def _parse_msr_row(row: Sequence[str], line: int) -> BlockIO:
    """``timestamp,host,disk,type,offset,size[,response_time]``.

    Timestamps and response times are Windows FILETIME ticks (100 ns),
    offsets and sizes bytes — the MSR-Cambridge enterprise format.
    """
    if len(row) < 6:
        raise TraceError(
            f"line {line}: expected at least 6 MSR columns "
            f"(timestamp,host,disk,type,offset,size), got {len(row)}")
    ticks = _parse_number(row[0], "timestamp", line, minimum=0.0)
    disk = int(_parse_number(row[2], "disk number", line, minimum=0.0))
    is_write = _parse_op(row[3], line)
    offset = int(_parse_number(row[4], "offset", line, minimum=0.0))
    size = int(_parse_number(row[5], "size", line))
    if size <= 0:
        raise TraceError(f"line {line}: bad size {row[5]!r}: "
                         "must be positive")
    latency = 0.0
    if len(row) > 6 and row[6].strip():
        latency = _parse_number(row[6], "response time", line,
                                minimum=0.0) * _FILETIME_TICK_S
    return BlockIO(time_s=ticks * _FILETIME_TICK_S,
                   host=row[1].strip(), disk=disk, offset=offset,
                   size_bytes=size, is_write=is_write, latency_s=latency)


def _parse_cloudphysics_row(row: Sequence[str], line: int) -> BlockIO:
    """``timestamp_us,lba,op,size`` — the CloudPhysics/Cydonia format.

    Timestamps are microseconds, LBAs 512-byte sectors, sizes bytes.
    """
    if len(row) < 4:
        raise TraceError(
            f"line {line}: expected at least 4 CloudPhysics columns "
            f"(ts,lba,op,size), got {len(row)}")
    ts_us = _parse_number(row[0], "timestamp", line, minimum=0.0)
    lba = int(_parse_number(row[1], "lba", line, minimum=0.0))
    is_write = _parse_op(row[2], line)
    size = int(_parse_number(row[3], "size", line))
    if size <= 0:
        raise TraceError(f"line {line}: bad size {row[3]!r}: "
                         "must be positive")
    return BlockIO(time_s=ts_us * 1e-6, host="", disk=0,
                   offset=lba * _SECTOR_BYTES, size_bytes=size,
                   is_write=is_write)


_ROW_PARSERS = {
    "msr": _parse_msr_row,
    "cloudphysics": _parse_cloudphysics_row,
}


def read_block_csv(path: str | Path, dialect: str = "msr") -> list[BlockIO]:
    """Parse a block-trace CSV file into :class:`BlockIO` rows.

    An optional non-numeric header line is skipped. Blank lines and
    ``#`` comments are ignored. Any malformed row raises
    :class:`~repro.errors.TraceError` naming its line number.
    """
    if dialect not in _ROW_PARSERS:
        raise TraceError(f"unknown trace dialect {dialect!r}; "
                         f"expected one of {DIALECTS}")
    parser = _ROW_PARSERS[dialect]
    path = Path(path)
    rows: list[BlockIO] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for line, row in enumerate(reader, start=1):
            if not row or not any(cell.strip() for cell in row):
                continue
            first = row[0].strip()
            if first.startswith("#"):
                continue
            if line == 1 and not _looks_numeric(first):
                continue  # header line
            rows.append(parser(row, line))
    if not rows:
        raise TraceError(f"{path}: no block I/O rows found")
    rows.sort(key=lambda r: r.time_s)
    return rows


def _looks_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------

def sample_window(rows: Sequence[BlockIO], start_s: float,
                  duration_s: float | None = None) -> list[BlockIO]:
    """The sub-list of rows inside ``[start_s, start_s + duration_s)``.

    Times are kept absolute (replay rebases them); relative order — and
    therefore per-namespace/per-bus ordering — is preserved, since the
    selection is a contiguous, order-preserving slice of the time-sorted
    input.
    """
    if start_s < 0:
        raise TraceError("window start must be non-negative")
    if duration_s is not None and duration_s <= 0:
        raise TraceError("window duration must be positive")
    end = math.inf if duration_s is None else start_s + duration_s
    return [r for r in rows if start_s <= r.time_s < end]


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------

def _hash_page(namespace_index: int, raw_page: int, num_pages: int) -> int:
    digest = hashlib.blake2b(f"{namespace_index}:{raw_page}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_pages


def replay_trace(
    source: str | Path | Sequence[BlockIO],
    config: ReplayConfig | None = None,
    dialect: str = "msr",
    name: str | None = None,
) -> Trace:
    """Convert a block trace into a simulator :class:`Trace`.

    ``source`` is either a CSV path (parsed with ``dialect``) or an
    already-parsed row sequence. The returned trace's metadata carries
    the replay knobs plus parse statistics (row counts, read/write mix,
    namespaces), which the golden-fixture tests pin down.
    """
    config = config or ReplayConfig()
    if isinstance(source, (str, Path)):
        rows = read_block_csv(source, dialect=dialect)
        trace_name = name or f"replay:{Path(source).stem}"
    else:
        rows = sorted(source, key=lambda r: r.time_s)
        trace_name = name or "replay"
    if not rows:
        raise TraceError("no block I/O rows to replay")

    # The window is specified relative to the first I/O: real block
    # traces (MSR FILETIME, epoch-microsecond dumps) start at huge
    # absolute timestamps nobody wants to type.
    start_s = rows[0].time_s + config.window_start_s
    rows = sample_window(rows, start_s, config.window_s)
    if not rows:
        raise TraceError(
            f"time window [{config.window_start_s:g}, "
            f"{config.window_start_s:g}+{config.window_s}) selects no rows")

    namespaces: dict[str, int] = {}
    for row in rows:
        namespaces.setdefault(row.namespace, len(namespaces))
    stripe = max(1, config.num_pages // max(1, len(namespaces)))

    origin_s = rows[0].time_s
    cycles_per_s = config.frequency_hz / config.time_compression
    base_default = config.base_latency_us * 1e-6 * config.frequency_hz

    records: list[DMATransfer | ProcessorBurst] = []
    clients: dict[int, ClientRequest] = {}
    reads = writes = 0
    total_bytes = 0
    split_ios = 0

    for request_id, row in enumerate(rows):
        ns_index = namespaces[row.namespace]
        time = (row.time_s - origin_s) * cycles_per_s
        bus = (ns_index % config.num_buses
               if config.bus_assignment == "by-disk" else None)
        if row.is_write:
            writes += 1
        else:
            reads += 1
        total_bytes += row.size_bytes

        first_page = row.offset // config.page_bytes
        last_page = (row.offset + row.size_bytes - 1) // config.page_bytes
        span = last_page - first_page + 1
        if span > config.max_transfers_per_io:
            span = config.max_transfers_per_io
            split_ios += 1
        remaining = row.size_bytes

        request_ref = request_id if config.make_clients else None
        if config.make_clients:
            base = (row.latency_s * config.frequency_hz
                    if row.latency_s > 0 else base_default)
            clients[request_id] = ClientRequest(
                request_id=request_id, arrival=time, base_cycles=base)

        for chunk in range(span):
            raw_page = first_page + chunk
            if config.page_layout == "hash":
                page = _hash_page(ns_index, raw_page, config.num_pages)
            else:
                page = (ns_index * stripe + raw_page) % config.num_pages
            chunk_bytes = min(remaining, config.page_bytes)
            remaining -= chunk_bytes
            records.append(DMATransfer(
                time=time,
                page=page,
                size_bytes=chunk_bytes,
                source=config.source,
                # DMA direction: a block *read* fills memory from the
                # device (a write into memory); a block write drains it.
                is_write=not row.is_write,
                bus=bus,
                request_id=request_ref,
            ))
            if remaining <= 0:
                break

        proc = int(round(config.proc_accesses_per_io))
        if proc > 0:
            transfer_cycles = row.size_bytes * config.frequency_hz \
                / units.PCIX_BANDWIDTH
            records.append(ProcessorBurst(
                time=time, page=records[-1].page, count=proc,
                window_cycles=2.0 * transfer_cycles))

    duration = max((r.time for r in records), default=0.0)
    window_span_s = rows[-1].time_s - origin_s
    trace = Trace(
        name=trace_name,
        records=records,
        clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "replay_trace",
            "dialect": dialect if isinstance(source, (str, Path)) else None,
            "page_layout": config.page_layout,
            "bus_assignment": config.bus_assignment,
            "num_pages": config.num_pages,
            "time_compression": config.time_compression,
            "window_start_s": config.window_start_s,
            "window_s": config.window_s,
            "block_ios": len(rows),
            "block_reads": reads,
            "block_writes": writes,
            "block_bytes": total_bytes,
            "split_ios": split_ios,
            "namespaces": sorted(namespaces),
            "trace_span_s": window_span_s,
            "proc_accesses_per_io": config.proc_accesses_per_io,
        },
    )
    return trace


def replay_for_memory(rows: Sequence[BlockIO] | str | Path,
                      total_pages: int,
                      config: ReplayConfig | None = None,
                      **kwargs) -> Trace:
    """:func:`replay_trace` clamped to a simulated memory's page count.

    Guarantees every emitted page id fits the chip geometry —
    ``num_pages`` is lowered to ``total_pages`` when the configured
    space is larger.
    """
    config = config or ReplayConfig()
    if total_pages <= 0:
        raise ConfigurationError("total_pages must be positive")
    if config.num_pages > total_pages:
        config = replace(config, num_pages=total_pages)
    return replay_trace(rows, config=config, **kwargs)
