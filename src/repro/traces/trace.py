"""The :class:`Trace` container and its manipulation utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import TraceError
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst, TraceRecord


@dataclass
class Trace:
    """A time-sorted memory-access trace plus client-request context.

    Attributes:
        name: identifier ("OLTP-St", "Synthetic-Db", ...).
        records: timed records, sorted by ``time`` (enforced).
        clients: client-request table keyed by request id.
        duration_cycles: trace horizon; at least the last record time.
        metadata: free-form generator parameters (rates, seed, page count)
            kept for reproducibility and for Table 2 reporting.
    """

    name: str
    records: list[TraceRecord] = field(default_factory=list)
    clients: dict[int, ClientRequest] = field(default_factory=dict)
    duration_cycles: float = 0.0
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.records.sort(key=lambda r: r.time)
        if self.records:
            last = self.records[-1].time
            if self.duration_cycles < last:
                self.duration_cycles = last
        self._validate()

    def _validate(self) -> None:
        for record in self.records:
            if isinstance(record, DMATransfer) and record.request_id is not None:
                if record.request_id not in self.clients:
                    raise TraceError(
                        f"transfer references unknown client request "
                        f"{record.request_id}")

    # --- views -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def transfers(self) -> list[DMATransfer]:
        """The DMA transfer records only, in time order."""
        return [r for r in self.records if isinstance(r, DMATransfer)]

    @property
    def processor_bursts(self) -> list[ProcessorBurst]:
        """The processor-burst records only, in time order."""
        return [r for r in self.records if isinstance(r, ProcessorBurst)]

    def pages(self) -> set[int]:
        """All logical pages referenced by the trace."""
        return {r.page for r in self.records}

    def max_page(self) -> int:
        """Largest referenced page id (-1 for an empty trace)."""
        return max((r.page for r in self.records), default=-1)

    # --- transformations ---------------------------------------------------

    def clipped(self, duration_cycles: float) -> "Trace":
        """A copy truncated to the first ``duration_cycles`` cycles."""
        if duration_cycles <= 0:
            raise TraceError("clip duration must be positive")
        records = [r for r in self.records if r.time < duration_cycles]
        ids = {r.request_id for r in records
               if isinstance(r, DMATransfer) and r.request_id is not None}
        clients = {i: self.clients[i] for i in ids}
        return Trace(
            name=self.name,
            records=records,
            clients=clients,
            duration_cycles=duration_cycles,
            metadata=dict(self.metadata),
        )

    def merged_with(self, other: "Trace", name: str | None = None) -> "Trace":
        """Merge two traces into one time-sorted trace.

        Client-request ids must not collide; generators namespace them.
        """
        overlap = self.clients.keys() & other.clients.keys()
        if overlap:
            raise TraceError(f"client request id collision: {sorted(overlap)[:5]}")
        clients = dict(self.clients)
        clients.update(other.clients)
        return Trace(
            name=name or f"{self.name}+{other.name}",
            records=list(self.records) + list(other.records),
            clients=clients,
            duration_cycles=max(self.duration_cycles, other.duration_cycles),
            metadata={"merged_from": [self.name, other.name]},
        )

    def fingerprint(self) -> str:
        """A stable hex digest of the full trace content.

        Hashes the canonical JSONL serialisation (header, clients,
        records — see :mod:`repro.traces.io`), so the digest survives a
        write/read round-trip and process restarts. Two traces with the
        same digest drive byte-identical simulations; :mod:`repro.exec`
        uses this as the trace component of its cache keys.

        Memoised on first use: traces are value objects whose records
        are never mutated after construction (every transformation —
        ``clipped``, ``merged_with``, :mod:`repro.traces.transform` —
        returns a new Trace), so the digest cannot go stale.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached

        import hashlib
        import io as _io

        from repro.traces.io import _write_stream

        buffer = _io.StringIO()
        _write_stream(self, buffer)
        digest = hashlib.sha256(
            buffer.getvalue().encode("utf-8")).hexdigest()
        self.__dict__["_fingerprint"] = digest
        return digest

    # --- summary -----------------------------------------------------------

    def transfer_rate_per_ms(self, frequency_hz: float) -> float:
        """Average DMA transfers per millisecond of simulated time."""
        if self.duration_cycles <= 0:
            return 0.0
        duration_ms = self.duration_cycles / frequency_hz * 1e3
        return len(self.transfers) / duration_ms

    def processor_access_rate_per_ms(self, frequency_hz: float) -> float:
        """Average processor cache-line accesses per millisecond."""
        if self.duration_cycles <= 0:
            return 0.0
        duration_ms = self.duration_cycles / frequency_hz * 1e3
        total = sum(b.count for b in self.processor_bursts)
        return total / duration_ms
