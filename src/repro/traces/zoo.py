"""The workload zoo: trace families beyond the paper's OLTP pair.

Rank-aware migration and demotion policies win or lose with access skew
and phase behaviour, so every family here stresses a different corner of
the technique space:

* :func:`kv_store_trace` — KV-store serving: Zipfian point reads with
  small (sector-to-page) transfers at high request rates; the skewed,
  stationary case PL is built for.
* :func:`ml_inference_trace` — ML-inference tensor streaming: large
  sequential page bursts per inference with tight client deadlines; the
  alignment-friendly, deadline-hostile case for DMA-TA.
* :func:`video_stream_trace` — video/CDN streaming: many concurrent
  sequential readers paced at segment granularity; almost no popularity
  skew per page, strong per-stream locality.
* :func:`drift_diurnal_trace` — diurnal popularity drift: the page
  popularity ranking is re-drawn every phase, forcing PL's periodic
  re-migration mid-run.
* :func:`flash_crowd_trace` — a flash crowd: mid-run, previously-cold
  pages suddenly absorb a traffic spike; the hot set PL computed from
  history is abruptly wrong.

Every generator is a pure function of its arguments: the same seed
yields a bit-identical trace in any process (guarding the
content-addressed result-cache keying), which the test suite asserts by
comparing :meth:`~repro.traces.trace.Trace.fingerprint` digests across
interpreter invocations.
"""

from __future__ import annotations

import logging
from typing import Callable

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.traces.distributions import ZipfSampler, poisson_times, rank_permutation
from repro.traces.records import (
    ClientRequest,
    DMATransfer,
    ProcessorBurst,
    SOURCE_DISK,
    SOURCE_NETWORK,
)
from repro.traces.trace import Trace

logger = logging.getLogger(__name__)


def _us_to_cycles(us: float, frequency_hz: float) -> float:
    return us * 1e-6 * frequency_hz


def kv_store_trace(
    duration_ms: float = 25.0,
    requests_per_ms: float = 150.0,
    num_pages: int = 16384,
    zipf_alpha: float = 0.99,
    write_fraction: float = 0.1,
    value_bytes: tuple[int, ...] = (512, 1024, 2048, 4096),
    value_weights: tuple[float, ...] = (0.5, 0.25, 0.15, 0.10),
    parse_us: float = 1.0,
    wire_us: float = 20.0,
    seed: int = 21,
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
    name: str = "KV-Store",
) -> Trace:
    """KV-store serving: Zipfian point lookups with small transfers.

    Each request is one network DMA moving a sub-page value — a GET
    reads the value out of memory, a PUT writes it in. The request rate
    is high and per-request work small, so chips see dense, skewed,
    fine-grained traffic: the regime where popularity concentration
    buys the most and temporal alignment must batch tiny transfers.
    """
    if not 0 <= write_fraction <= 1:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    if len(value_bytes) != len(value_weights) or not value_bytes:
        raise ConfigurationError(
            "value_bytes and value_weights must be equal-length, non-empty")
    if any(b <= 0 for b in value_bytes):
        raise ConfigurationError("value sizes must be positive")

    rng = np.random.default_rng(seed)
    cycles_per_ms = frequency_hz / 1e3
    duration = duration_ms * cycles_per_ms
    parse = _us_to_cycles(parse_us, frequency_hz)
    wire = _us_to_cycles(wire_us, frequency_hz)

    times = poisson_times(requests_per_ms / cycles_per_ms, duration, rng)
    sampler = ZipfSampler(num_pages, zipf_alpha, rng)
    pages = rank_permutation(num_pages, rng)[sampler.sample(len(times))]
    weights = np.asarray(value_weights, dtype=float)
    sizes = rng.choice(np.asarray(value_bytes), size=len(times),
                       p=weights / weights.sum())
    is_put = rng.random(len(times)) < write_fraction

    records: list[DMATransfer] = []
    clients: dict[int, ClientRequest] = {}
    for request_id, (time, page, size, put) in enumerate(
            zip(times, pages, sizes, is_put)):
        time = float(time)
        clients[request_id] = ClientRequest(
            request_id=request_id, arrival=time, base_cycles=parse + wire)
        records.append(DMATransfer(
            time=time + parse, page=int(page), size_bytes=int(size),
            source=SOURCE_NETWORK, is_write=bool(put),
            request_id=request_id))

    duration = max(duration, max((r.time for r in records), default=0.0))
    logger.debug("kv_store_trace: %d requests over %.1f ms (seed=%d)",
                 len(records), duration_ms, seed)
    return Trace(
        name=name, records=list(records), clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "kv_store_trace",
            "family": "kv-store",
            "seed": seed,
            "duration_ms": duration_ms,
            "requests_per_ms": requests_per_ms,
            "num_pages": num_pages,
            "zipf_alpha": zipf_alpha,
            "write_fraction": write_fraction,
            "value_bytes": list(value_bytes),
        },
    )


def ml_inference_trace(
    duration_ms: float = 25.0,
    inferences_per_ms: float = 2.0,
    num_models: int = 4,
    pages_per_model: int = 512,
    pages_per_inference: int = 48,
    model_alpha: float = 1.2,
    deadline_us: float = 2000.0,
    parse_us: float = 5.0,
    proc_accesses_per_inference: int = 64,
    io_bus_bandwidth: float = units.PCIX_BANDWIDTH,
    seed: int = 22,
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
    name: str = "ML-Inference",
) -> Trace:
    """ML-inference tensor streaming: large sequential bursts, deadlines.

    Each inference streams a contiguous window of one model's weight
    pages out of memory as back-to-back page-sized DMAs paced at bus
    rate, plus a pre/post-processing burst of processor accesses. The
    client baseline is small against the tight ``deadline_us`` budget,
    so nearly all the response headroom belongs to the memory system —
    DMA-TA has little slack to spend and must exploit the natural
    alignment of the streams instead.
    """
    if num_models <= 0 or pages_per_model <= 0:
        raise ConfigurationError("model geometry must be positive")
    if not 0 < pages_per_inference <= pages_per_model:
        raise ConfigurationError(
            "pages_per_inference must be in (0, pages_per_model]")
    if deadline_us <= 0:
        raise ConfigurationError("deadline_us must be positive")
    if proc_accesses_per_inference < 0:
        raise ConfigurationError(
            "proc_accesses_per_inference must be non-negative")

    rng = np.random.default_rng(seed)
    cycles_per_ms = frequency_hz / 1e3
    duration = duration_ms * cycles_per_ms
    parse = _us_to_cycles(parse_us, frequency_hz)
    page_bytes = 8192
    page_cycles = page_bytes * frequency_hz / io_bus_bandwidth

    times = poisson_times(inferences_per_ms / cycles_per_ms, duration, rng)
    model_sampler = ZipfSampler(num_models, model_alpha, rng)
    models = model_sampler.sample(len(times))
    starts = rng.integers(0, pages_per_model - pages_per_inference + 1,
                          size=len(times))

    records: list[DMATransfer | ProcessorBurst] = []
    clients: dict[int, ClientRequest] = {}
    for request_id, (time, model, start) in enumerate(
            zip(times, models, starts)):
        time = float(time)
        clients[request_id] = ClientRequest(
            request_id=request_id, arrival=time, base_cycles=parse)
        base_page = int(model) * pages_per_model + int(start)
        stream_start = time + parse
        if proc_accesses_per_inference:
            records.append(ProcessorBurst(
                time=stream_start, page=base_page,
                count=proc_accesses_per_inference,
                window_cycles=pages_per_inference * page_cycles))
        for index in range(pages_per_inference):
            records.append(DMATransfer(
                time=stream_start + index * page_cycles,
                page=base_page + index,
                size_bytes=page_bytes,
                source=SOURCE_NETWORK,
                is_write=False,
                request_id=request_id,
            ))

    duration = max(duration, max((r.time for r in records), default=0.0))
    logger.debug("ml_inference_trace: %d inferences, %d records (seed=%d)",
                 len(times), len(records), seed)
    return Trace(
        name=name, records=records, clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "ml_inference_trace",
            "family": "ml-inference",
            "seed": seed,
            "duration_ms": duration_ms,
            "inferences_per_ms": inferences_per_ms,
            "num_models": num_models,
            "pages_per_model": pages_per_model,
            "pages_per_inference": pages_per_inference,
            "deadline_us": deadline_us,
            "num_pages": num_models * pages_per_model,
        },
    )


def video_stream_trace(
    duration_ms: float = 25.0,
    streams: int = 12,
    segment_interval_ms: float = 1.5,
    segment_pages: int = 16,
    library_pages_per_stream: int = 1024,
    jitter_fraction: float = 0.1,
    wire_us: float = 200.0,
    io_bus_bandwidth: float = units.PCIX_BANDWIDTH,
    seed: int = 23,
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
    name: str = "Video-Stream",
) -> Trace:
    """Video/CDN streaming: concurrent paced sequential readers.

    Each stream fetches a fixed-size segment (a run of consecutive
    pages, read from disk into the buffer cache) every
    ``segment_interval_ms``, advancing linearly through its own slice of
    the library with a small arrival jitter. Per-page popularity is
    nearly flat and strictly transient — the anti-PL workload — while
    the wide, periodic segment bursts give temporal alignment a strongly
    periodic arrival process to exploit.
    """
    if streams <= 0 or segment_pages <= 0:
        raise ConfigurationError("streams and segment_pages must be positive")
    if segment_interval_ms <= 0:
        raise ConfigurationError("segment_interval_ms must be positive")
    if library_pages_per_stream < segment_pages:
        raise ConfigurationError(
            "library_pages_per_stream must hold at least one segment")
    if not 0 <= jitter_fraction < 1:
        raise ConfigurationError("jitter_fraction must be in [0, 1)")

    rng = np.random.default_rng(seed)
    cycles_per_ms = frequency_hz / 1e3
    duration = duration_ms * cycles_per_ms
    interval = segment_interval_ms * cycles_per_ms
    wire = _us_to_cycles(wire_us, frequency_hz)
    page_bytes = 8192
    page_cycles = page_bytes * frequency_hz / io_bus_bandwidth

    phases = rng.random(streams) * interval
    positions = rng.integers(
        0, library_pages_per_stream - segment_pages + 1, size=streams)

    records: list[DMATransfer] = []
    clients: dict[int, ClientRequest] = {}
    request_id = 0
    for stream in range(streams):
        base_page = stream * library_pages_per_stream
        position = int(positions[stream])
        fetch_at = float(phases[stream])
        while fetch_at < duration:
            jitter = float(rng.normal(0.0, jitter_fraction * interval))
            start = max(0.0, fetch_at + jitter)
            clients[request_id] = ClientRequest(
                request_id=request_id, arrival=start, base_cycles=wire)
            for index in range(segment_pages):
                page_offset = (position + index) % library_pages_per_stream
                records.append(DMATransfer(
                    time=start + index * page_cycles,
                    page=base_page + page_offset,
                    size_bytes=page_bytes,
                    source=SOURCE_DISK,
                    is_write=True,
                    bus=stream % 3,
                    request_id=request_id,
                ))
            request_id += 1
            position = (position + segment_pages) % library_pages_per_stream
            fetch_at += interval

    duration = max(duration, max((r.time for r in records), default=0.0))
    logger.debug("video_stream_trace: %d streams, %d segments (seed=%d)",
                 streams, request_id, seed)
    return Trace(
        name=name, records=list(records), clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "video_stream_trace",
            "family": "video-stream",
            "seed": seed,
            "duration_ms": duration_ms,
            "streams": streams,
            "segment_interval_ms": segment_interval_ms,
            "segment_pages": segment_pages,
            "num_pages": streams * library_pages_per_stream,
        },
    )


def drift_diurnal_trace(
    duration_ms: float = 25.0,
    transfers_per_ms: float = 100.0,
    num_pages: int = 16384,
    zipf_alpha: float = 1.0,
    phases: int = 3,
    write_fraction: float = 0.2,
    parse_us: float = 3.0,
    wire_us: float = 40.0,
    seed: int = 24,
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
    name: str = "Drift-Diurnal",
) -> Trace:
    """Diurnal popularity drift: the hot set moves every phase.

    The run is cut into ``phases`` equal windows; each window draws a
    fresh rank→page permutation, so the pages that were hot in one
    phase are (almost surely) cold in the next — a compressed model of
    day/night traffic shifts. PL's periodically recomputed ranking
    must chase the moving hot set, forcing re-migrations at the
    interval boundaries after every shift.
    """
    if phases < 2:
        raise ConfigurationError("drift needs at least 2 phases")
    if not 0 <= write_fraction <= 1:
        raise ConfigurationError("write_fraction must be in [0, 1]")

    rng = np.random.default_rng(seed)
    cycles_per_ms = frequency_hz / 1e3
    duration = duration_ms * cycles_per_ms
    parse = _us_to_cycles(parse_us, frequency_hz)
    wire = _us_to_cycles(wire_us, frequency_hz)
    phase_cycles = duration / phases

    times = poisson_times(transfers_per_ms / cycles_per_ms, duration, rng)
    sampler = ZipfSampler(num_pages, zipf_alpha, rng)
    ranks = sampler.sample(len(times))
    permutations = [rank_permutation(num_pages, rng) for _ in range(phases)]
    is_write = rng.random(len(times)) < write_fraction

    records: list[DMATransfer] = []
    clients: dict[int, ClientRequest] = {}
    for request_id, (time, rank, write) in enumerate(
            zip(times, ranks, is_write)):
        time = float(time)
        phase = min(phases - 1, int(time // phase_cycles))
        page = int(permutations[phase][rank])
        clients[request_id] = ClientRequest(
            request_id=request_id, arrival=time, base_cycles=parse + wire)
        records.append(DMATransfer(
            time=time + parse, page=page, size_bytes=8192,
            source=SOURCE_NETWORK, is_write=bool(write),
            request_id=request_id))

    duration = max(duration, max((r.time for r in records), default=0.0))
    logger.debug("drift_diurnal_trace: %d transfers, %d phases (seed=%d)",
                 len(records), phases, seed)
    return Trace(
        name=name, records=list(records), clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "drift_diurnal_trace",
            "family": "drift-diurnal",
            "seed": seed,
            "duration_ms": duration_ms,
            "transfers_per_ms": transfers_per_ms,
            "num_pages": num_pages,
            "zipf_alpha": zipf_alpha,
            "phases": phases,
            "phase_ms": duration_ms / phases,
        },
    )


def flash_crowd_trace(
    duration_ms: float = 25.0,
    base_transfers_per_ms: float = 60.0,
    crowd_transfers_per_ms: float = 240.0,
    crowd_start_fraction: float = 0.5,
    crowd_duration_fraction: float = 0.3,
    crowd_pages: int = 64,
    num_pages: int = 16384,
    zipf_alpha: float = 1.0,
    parse_us: float = 3.0,
    wire_us: float = 40.0,
    seed: int = 25,
    frequency_hz: float = units.RDRAM_FREQUENCY_HZ,
    name: str = "Flash-Crowd",
) -> Trace:
    """A flash crowd hits previously-cold content mid-run.

    Background traffic follows a stationary Zipf popularity; at
    ``crowd_start_fraction`` of the run, an additional request wave
    concentrates on ``crowd_pages`` pages drawn from the *cold tail* of
    the background ranking. The hot set PL learned from history is
    suddenly wrong, and the crowd's intensity makes the mistake
    expensive — the stress case for re-migration latency.
    """
    if not 0 <= crowd_start_fraction < 1:
        raise ConfigurationError("crowd_start_fraction must be in [0, 1)")
    if not 0 < crowd_duration_fraction <= 1 - crowd_start_fraction:
        raise ConfigurationError(
            "crowd window must fit inside the run")
    if not 0 < crowd_pages <= num_pages:
        raise ConfigurationError("crowd_pages must be in (0, num_pages]")

    rng = np.random.default_rng(seed)
    cycles_per_ms = frequency_hz / 1e3
    duration = duration_ms * cycles_per_ms
    parse = _us_to_cycles(parse_us, frequency_hz)
    wire = _us_to_cycles(wire_us, frequency_hz)

    base_times = poisson_times(
        base_transfers_per_ms / cycles_per_ms, duration, rng)
    sampler = ZipfSampler(num_pages, zipf_alpha, rng)
    permutation = rank_permutation(num_pages, rng)
    base_pages = permutation[sampler.sample(len(base_times))]

    crowd_start = crowd_start_fraction * duration
    crowd_span = crowd_duration_fraction * duration
    crowd_times = crowd_start + poisson_times(
        crowd_transfers_per_ms / cycles_per_ms, crowd_span, rng)
    # The crowd lands on the least-popular ranks of the background
    # distribution: pages with (near-)zero history.
    tail = permutation[num_pages - crowd_pages:]
    crowd_pages_drawn = tail[rng.integers(0, crowd_pages,
                                          size=len(crowd_times))]

    arrivals = np.concatenate([base_times, crowd_times])
    pages = np.concatenate([base_pages, crowd_pages_drawn])
    order = np.argsort(arrivals, kind="stable")

    records: list[DMATransfer] = []
    clients: dict[int, ClientRequest] = {}
    for request_id, index in enumerate(order):
        time = float(arrivals[index])
        clients[request_id] = ClientRequest(
            request_id=request_id, arrival=time, base_cycles=parse + wire)
        records.append(DMATransfer(
            time=time + parse, page=int(pages[index]), size_bytes=8192,
            source=SOURCE_NETWORK, is_write=False, request_id=request_id))

    duration = max(duration, max((r.time for r in records), default=0.0))
    logger.debug("flash_crowd_trace: %d base + %d crowd transfers (seed=%d)",
                 len(base_times), len(crowd_times), seed)
    return Trace(
        name=name, records=list(records), clients=clients,
        duration_cycles=duration,
        metadata={
            "generator": "flash_crowd_trace",
            "family": "flash-crowd",
            "seed": seed,
            "duration_ms": duration_ms,
            "base_transfers_per_ms": base_transfers_per_ms,
            "crowd_transfers_per_ms": crowd_transfers_per_ms,
            "crowd_start_fraction": crowd_start_fraction,
            "crowd_duration_fraction": crowd_duration_fraction,
            "crowd_pages": crowd_pages,
            "num_pages": num_pages,
        },
    )


#: Name → generator registry: the zoo as the CLI and benches see it.
ZOO: dict[str, Callable[..., Trace]] = {
    "kv-store": kv_store_trace,
    "ml-inference": ml_inference_trace,
    "video-stream": video_stream_trace,
    "drift-diurnal": drift_diurnal_trace,
    "flash-crowd": flash_crowd_trace,
}


def zoo_trace(family: str, **overrides) -> Trace:
    """Build a zoo trace by family name (see :data:`ZOO`)."""
    try:
        generator = ZOO[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload family {family!r}; "
            f"expected one of {sorted(ZOO)}") from None
    return generator(**overrides)
