"""Sampling utilities shared by the trace generators."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class ZipfSampler:
    """Samples item ranks from a (generalised) Zipf distribution.

    ``P(rank i) ~ 1 / (i + 1)^alpha`` for ranks ``0 .. n-1`` (rank 0 is
    the most popular item). ``alpha = 1`` matches the paper's synthetic
    traces; smaller values flatten the curve (the OLTP-St generator uses
    ~0.7 to match Figure 4's "20% of pages get 60% of accesses").
    """

    def __init__(self, num_items: int, alpha: float,
                 rng: np.random.Generator) -> None:
        if num_items <= 0:
            raise ConfigurationError("num_items must be positive")
        if alpha < 0:
            raise ConfigurationError("alpha must be non-negative")
        self.num_items = num_items
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, num_items + 1, dtype=float), alpha)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, count: int) -> np.ndarray:
        """``count`` ranks, 0-based, most popular first."""
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cdf, uniforms, side="left").astype(np.int64)

    def access_fraction_of_top(self, fraction_of_items: float) -> float:
        """Analytic CDF: fraction of accesses to the top items.

        ``access_fraction_of_top(0.2)`` is Figure 4's "x% of pages receive
        y% of accesses" read off at x = 20.
        """
        if not 0 < fraction_of_items <= 1:
            raise ConfigurationError("fraction must be in (0, 1]")
        top = max(1, int(round(fraction_of_items * self.num_items)))
        return float(self._cdf[top - 1])


def poisson_times(rate_per_cycle: float, duration_cycles: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Sorted event times of a Poisson process over ``[0, duration)``."""
    if rate_per_cycle < 0 or duration_cycles < 0:
        raise ConfigurationError("rate and duration must be non-negative")
    expected = rate_per_cycle * duration_cycles
    count = int(rng.poisson(expected)) if expected > 0 else 0
    times = rng.random(count) * duration_cycles
    times.sort()
    return times


def rank_permutation(num_items: int, rng: np.random.Generator) -> np.ndarray:
    """A random rank -> page-id mapping.

    Trace pages are identified by arbitrary ids, so popularity rank must
    not correlate with page id — otherwise a sequential layout would
    accidentally cluster hot pages and hide the benefit PL provides.
    """
    permutation = np.arange(num_items, dtype=np.int64)
    rng.shuffle(permutation)
    return permutation
