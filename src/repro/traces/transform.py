"""Trace transformations: rescaling, filtering, anonymising, splitting.

These are the workload-engineering tools behind sensitivity studies: the
Figure 8 intensity sweep is a time-compression of one base trace, source
filters isolate network from disk behaviour, and anonymisation strips
client context so traces from different generators can be mixed.
All transforms are pure — they return new :class:`Trace` objects.
"""

from __future__ import annotations

import dataclasses

from repro.errors import TraceError
from repro.traces.records import ClientRequest, DMATransfer, ProcessorBurst
from repro.traces.trace import Trace


def scale_intensity(trace: Trace, factor: float,
                    name: str | None = None) -> Trace:
    """Compress (factor > 1) or dilate (factor < 1) the trace in time.

    Multiplying the event density by ``factor`` divides every timestamp
    and the horizon by it; transfer sizes and per-record contents are
    untouched, so the DMA request geometry is preserved while the
    arrival rate scales — the paper's Figure 8 axis.
    """
    if factor <= 0:
        raise TraceError("intensity factor must be positive")
    records = []
    for record in trace.records:
        records.append(dataclasses.replace(record, time=record.time / factor))
    clients = {
        rid: dataclasses.replace(c, arrival=c.arrival / factor)
        for rid, c in trace.clients.items()
    }
    return Trace(
        name=name or f"{trace.name}x{factor:g}",
        records=records,
        clients=clients,
        duration_cycles=trace.duration_cycles / factor,
        metadata={**trace.metadata, "intensity_factor": factor},
    )


def filter_source(trace: Trace, source: str,
                  keep_processor: bool = False) -> Trace:
    """Keep only DMA transfers from one source (``network``/``disk``).

    Client requests whose transfers are all dropped are removed too.
    """
    records = []
    for record in trace.records:
        if isinstance(record, DMATransfer):
            if record.source == source:
                records.append(record)
        elif keep_processor:
            records.append(record)
    referenced = {r.request_id for r in records
                  if isinstance(r, DMATransfer) and r.request_id is not None}
    clients = {rid: c for rid, c in trace.clients.items()
               if rid in referenced}
    return Trace(
        name=f"{trace.name}:{source}",
        records=records,
        clients=clients,
        duration_cycles=trace.duration_cycles,
        metadata={**trace.metadata, "source_filter": source},
    )


def strip_clients(trace: Trace, name: str | None = None) -> Trace:
    """Drop the client table and request-id references.

    The result carries raw memory traffic only — mixable with any other
    stripped trace without id collisions, at the cost of CP-Limit
    calibration (pass ``mu`` explicitly for such traces).
    """
    records = []
    for record in trace.records:
        if isinstance(record, DMATransfer) and record.request_id is not None:
            records.append(dataclasses.replace(record, request_id=None))
        else:
            records.append(record)
    return Trace(
        name=name or trace.name,
        records=records,
        clients={},
        duration_cycles=trace.duration_cycles,
        metadata=dict(trace.metadata),
    )


def renumber_clients(trace: Trace, offset: int) -> Trace:
    """Shift every client-request id by ``offset`` (for collision-free
    merges of independently generated traces)."""
    if offset < 0:
        raise TraceError("offset must be non-negative")
    records = []
    for record in trace.records:
        if isinstance(record, DMATransfer) and record.request_id is not None:
            records.append(dataclasses.replace(
                record, request_id=record.request_id + offset))
        else:
            records.append(record)
    clients = {
        rid + offset: dataclasses.replace(c, request_id=rid + offset)
        for rid, c in trace.clients.items()
    }
    return Trace(
        name=trace.name,
        records=records,
        clients=clients,
        duration_cycles=trace.duration_cycles,
        metadata=dict(trace.metadata),
    )


def merge_traces(traces: list[Trace], name: str = "merged") -> Trace:
    """Merge several traces, renumbering clients to avoid collisions."""
    if not traces:
        raise TraceError("nothing to merge")
    offset = 0
    records = []
    clients: dict[int, ClientRequest] = {}
    for trace in traces:
        shifted = renumber_clients(trace, offset)
        records.extend(shifted.records)
        clients.update(shifted.clients)
        offset = max(clients.keys(), default=-1) + 1
    return Trace(
        name=name,
        records=records,
        clients=clients,
        duration_cycles=max(t.duration_cycles for t in traces),
        metadata={"merged_from": [t.name for t in traces]},
    )


def resize_transfers(trace: Trace, size_bytes: int) -> Trace:
    """Replace every transfer's size (request-size sensitivity studies).

    The paper notes transfers of 512 bytes (disk sectors) up to 8 KB
    (pages); this transform re-expresses a trace at a different block
    size while keeping its arrival process and page targets.
    """
    if size_bytes <= 0:
        raise TraceError("size must be positive")
    records = []
    for record in trace.records:
        if isinstance(record, DMATransfer):
            records.append(dataclasses.replace(record,
                                               size_bytes=size_bytes))
        else:
            records.append(record)
    return Trace(
        name=f"{trace.name}@{size_bytes}B",
        records=records,
        clients=dict(trace.clients),
        duration_cycles=trace.duration_cycles,
        metadata={**trace.metadata, "transfer_bytes": size_bytes},
    )
