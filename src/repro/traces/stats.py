"""Trace characterisation: Table 2 rows and the Figure 4 popularity CDF."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro import units
from repro.traces.records import DMATransfer, ProcessorBurst, SOURCE_DISK, SOURCE_NETWORK
from repro.traces.trace import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary characteristics of a trace (one Table 2 row, extended).

    Attributes:
        name: trace name.
        duration_ms: trace length.
        transfers: total DMA transfers.
        transfers_per_ms: total DMA transfer rate.
        net_transfers_per_ms / disk_transfers_per_ms: per-source rates.
        proc_accesses_per_ms: processor cache-line access rate.
        proc_accesses_per_transfer: the Figure 9 x-axis statistic.
        mean_transfer_bytes: average transfer size.
        pages_referenced: distinct pages touched.
        top20_access_fraction: fraction of DMA accesses going to the most
            popular 20% of referenced pages (Figure 4 read at x = 20).
    """

    name: str
    duration_ms: float
    transfers: int
    transfers_per_ms: float
    net_transfers_per_ms: float
    disk_transfers_per_ms: float
    proc_accesses_per_ms: float
    proc_accesses_per_transfer: float
    mean_transfer_bytes: float
    pages_referenced: int
    top20_access_fraction: float


def page_access_counts(trace: Trace) -> Counter:
    """DMA accesses per page (transfer-weighted, as in Figure 4)."""
    counts: Counter[int] = Counter()
    for record in trace.records:
        if isinstance(record, DMATransfer):
            counts[record.page] += 1
    return counts


def popularity_cdf(trace: Trace, points: int = 100) -> list[tuple[float, float]]:
    """The Figure 4 curve: ``(page fraction, access fraction)`` points.

    Pages are sorted by popularity; a point ``(x, y)`` means the most
    popular ``x`` fraction of referenced pages receives ``y`` fraction of
    the DMA accesses.
    """
    counts = page_access_counts(trace)
    if not counts:
        return []
    ordered = sorted(counts.values(), reverse=True)
    total = sum(ordered)
    cdf: list[tuple[float, float]] = []
    cumulative = 0
    next_edge = 1
    for index, value in enumerate(ordered, start=1):
        cumulative += value
        while index >= next_edge * len(ordered) / points and next_edge <= points:
            cdf.append((index / len(ordered), cumulative / total))
            next_edge += 1
    return cdf


def top_fraction_access_share(trace: Trace, page_fraction: float = 0.2) -> float:
    """Fraction of DMA accesses landing on the top ``page_fraction`` pages."""
    counts = page_access_counts(trace)
    if not counts:
        return 0.0
    ordered = sorted(counts.values(), reverse=True)
    top = max(1, int(round(page_fraction * len(ordered))))
    return sum(ordered[:top]) / sum(ordered)


def characterize(trace: Trace,
                 frequency_hz: float = units.RDRAM_FREQUENCY_HZ) -> TraceStats:
    """Compute the Table 2-style summary of a trace."""
    duration_ms = trace.duration_cycles / frequency_hz * 1e3
    transfers = trace.transfers
    bursts = trace.processor_bursts
    net = sum(1 for t in transfers if t.source == SOURCE_NETWORK)
    disk = sum(1 for t in transfers if t.source == SOURCE_DISK)
    proc = sum(b.count for b in bursts)
    total_bytes = sum(t.size_bytes for t in transfers)
    pages = {r.page for r in trace.records}

    per_ms = (lambda n: n / duration_ms) if duration_ms > 0 else (lambda n: 0.0)
    return TraceStats(
        name=trace.name,
        duration_ms=duration_ms,
        transfers=len(transfers),
        transfers_per_ms=per_ms(len(transfers)),
        net_transfers_per_ms=per_ms(net),
        disk_transfers_per_ms=per_ms(disk),
        proc_accesses_per_ms=per_ms(proc),
        proc_accesses_per_transfer=proc / len(transfers) if transfers else 0.0,
        mean_transfer_bytes=total_bytes / len(transfers) if transfers else 0.0,
        pages_referenced=len(pages),
        top20_access_fraction=top_fraction_access_share(trace, 0.2),
    )
