"""Command-line interface.

``python -m repro <command>`` (or the installed ``repro`` script) drives
the library without writing Python: generate the evaluation traces,
characterise them, run single simulations, compare techniques, and sweep
CP-Limits.

Examples::

    repro generate synthetic-st -o st.jsonl --duration-ms 25
    repro characterize st.jsonl
    repro simulate st.jsonl --technique dma-ta-pl --cp-limit 0.1
    repro compare st.jsonl --cp-limit 0.1
    repro sweep st.jsonl --technique dma-ta-pl --cp-limits 0.02,0.1,0.3
    repro calibrate st.jsonl --cp-limit 0.1
    repro trace st.jsonl --technique dma-ta-pl --out trace.json
    repro audit st.jsonl --technique dma-ta --mu 2.0 --strict
    repro stats st.jsonl --technique dma-ta-pl
    repro watch st.jsonl --technique dma-ta-pl --cp-limit 0.1
    repro diff st.jsonl --technique dma-ta --engines precise,precise-scalar
    repro bench run --quick
    repro bench compare --fail-on-regression
    repro bench explain fig5 --metric "OLTP-St/dma-ta-pl/cp=0.02"
    repro bench report -o bench_report.html

``--log-level`` (or the ``REPRO_LOG_LEVEL`` environment variable) turns
on stdlib logging for every ``repro.*`` module — executor pool
fallbacks, cache corruption warnings, trace-generator diagnostics.
``--log-format json`` (or ``REPRO_LOG_FORMAT=json``) switches those
loggers to one structured JSON object per line for machine ingestion
(and implies ``--log-level info`` when no level was given).
``--profile`` on the run verbs (or ``REPRO_PROFILE=1``) wraps engine
runs in cProfile; see :mod:`repro.obs.perf`.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
from typing import Callable, Sequence

from repro import __version__
from repro.analysis.charts import savings_chart
from repro.analysis.tables import format_breakdown, format_table
from repro.config import SimulationConfig
from repro.core.cp_limit import calibrate_mu
from repro.errors import ReproError
from repro.sim.run import ENGINES, TECHNIQUES, simulate
from repro.traces.io import read_trace, write_trace
from repro.traces.oltp import oltp_database_trace, oltp_storage_trace
from repro.traces.replay import DIALECTS, PAGE_LAYOUTS, ReplayConfig, replay_trace
from repro.traces.stats import characterize, popularity_cdf
from repro.traces.synthetic import synthetic_database_trace, synthetic_storage_trace
from repro.traces.zoo import ZOO

#: Every workload name ``repro generate`` accepts: the paper's four
#: evaluation traces plus the workload-zoo families (docs/WORKLOADS.md).
GENERATORS: dict[str, Callable] = {
    "oltp-st": oltp_storage_trace,
    "oltp-db": oltp_database_trace,
    "synthetic-st": synthetic_storage_trace,
    "synthetic-db": synthetic_database_trace,
    **ZOO,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DMA-aware memory energy management (HPCA 2006) "
                    "reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument(
        "--log-level", type=str.lower,
        choices=("debug", "info", "warning", "error"),
        default=os.environ.get("REPRO_LOG_LEVEL"),
        help="enable stdlib logging at this level for all repro modules "
             "(default: $REPRO_LOG_LEVEL, or off)")
    parser.add_argument(
        "--log-format", type=str.lower, choices=("text", "json"),
        default=os.environ.get("REPRO_LOG_FORMAT", "text"),
        help="module-logger output: human-readable text, or one JSON "
             "object per line for machine ingestion (default: "
             "$REPRO_LOG_FORMAT, or text; json implies --log-level info "
             "when no level is given)")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate one of the four evaluation traces")
    generate.add_argument("kind", choices=sorted(GENERATORS))
    generate.add_argument("-o", "--output", required=True,
                          help="output trace file (JSONL)")
    generate.add_argument("--duration-ms", type=float, default=25.0)
    generate.add_argument("--seed", type=int, default=1)

    replay = commands.add_parser(
        "replay", help="replay a public block trace (MSR-Cambridge/"
                       "CloudPhysics CSV) through the simulator")
    replay.add_argument("csv", help="block-trace CSV file")
    replay.add_argument("--dialect", choices=DIALECTS, default="msr",
                        help="CSV dialect (default: msr)")
    replay.add_argument("--technique", choices=TECHNIQUES, default=None,
                        help="also simulate the replayed trace under "
                             "this technique, with the strict auditor "
                             "watching the run")
    replay.add_argument("--engine", choices=ENGINES, default="fluid")
    replay.add_argument("--cp-limit", type=float, default=None)
    replay.add_argument("--mu", type=float, default=None)
    replay.add_argument("--seed", type=int, default=0,
                        help="page-layout seed for the simulation")
    replay.add_argument("--page-layout", choices=PAGE_LAYOUTS,
                        default="modulo",
                        help="offset->page mapping: 'modulo' keeps disk "
                             "runs sequential, 'hash' scatters them")
    replay.add_argument("--num-pages", type=int, default=None,
                        help="logical page space to fold offsets into "
                             "(default: the simulated memory's size)")
    replay.add_argument("--window", default=None, metavar="START:DUR",
                        help="replay only trace seconds "
                             "[START, START+DUR)")
    replay.add_argument("--time-compression", type=float, default=1.0,
                        help="divide trace time by this factor (1000 = "
                             "1 traced second per simulated ms)")
    replay.add_argument("--proc-per-io", type=float, default=0.0,
                        help="synthesised processor accesses per block "
                             "I/O (the I/O-to-compute ratio)")
    replay.add_argument("-o", "--output", default=None,
                        help="also write the converted trace (JSONL)")

    char = commands.add_parser(
        "characterize", help="print a trace's Table 2-style summary")
    char.add_argument("trace", help="trace file (JSONL)")
    char.add_argument("--cdf", action="store_true",
                      help="also print the Figure 4 popularity CDF")

    sim = commands.add_parser("simulate", help="run one simulation")
    sim.add_argument("trace")
    sim.add_argument("--technique", choices=TECHNIQUES, default="baseline")
    sim.add_argument("--engine", choices=ENGINES, default="fluid")
    sim.add_argument("--cp-limit", type=float, default=None,
                     help="client-perceived degradation limit (e.g. 0.1)")
    sim.add_argument("--mu", type=float, default=None,
                     help="raw per-request degradation parameter")
    sim.add_argument("--seed", type=int, default=0,
                     help="page-layout seed")
    sim.add_argument("--profile", action="store_true",
                     help="profile the engine run and print the top "
                          "hot paths (see also $REPRO_PROFILE)")

    compare = commands.add_parser(
        "compare", help="baseline vs DMA-TA vs DMA-TA-PL on one trace")
    compare.add_argument("trace")
    compare.add_argument("--cp-limit", type=float, default=0.10)

    sweep = commands.add_parser(
        "sweep", help="savings vs CP-Limit for one technique")
    sweep.add_argument("trace")
    sweep.add_argument("--technique", choices=("dma-ta", "dma-ta-pl"),
                       default="dma-ta-pl")
    sweep.add_argument("--cp-limits", default="0.02,0.05,0.1,0.2,0.3",
                       help="comma-separated CP-Limit list")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sweep (1 = serial)")
    sweep.add_argument("--cache", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="read/write the on-disk result cache "
                            "(--no-cache bypasses it; the default)")
    sweep.add_argument("--cache-dir", default=None,
                       help="cache directory (default: $REPRO_CACHE_DIR "
                            "or .repro_cache)")
    sweep.add_argument("--fleet", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="cross-process fleet observability (default: "
                            "auto — on for --jobs > 1 and whenever "
                            "--watch or a fleet output is requested; "
                            "--no-fleet forces it off)")
    sweep.add_argument("--watch", action="store_true",
                       help="serve the live fleet dashboard while the "
                            "sweep runs")
    sweep.add_argument("--serve-port", type=int, default=8766,
                       help="dashboard port for --watch (0 = ephemeral; "
                            "default 8766)")
    sweep.add_argument("--host", default="127.0.0.1",
                       help="dashboard bind address (default 127.0.0.1)")
    sweep.add_argument("--port-file", default=None,
                       help="write the dashboard's bound port to this "
                            "file once listening (handy with "
                            "--serve-port 0 in scripts/CI)")
    sweep.add_argument("--no-browser", action="store_true",
                       help="do not open the dashboard in a browser")
    sweep.add_argument("--linger-s", type=float, default=0.0,
                       help="keep the --watch dashboard up this many "
                            "seconds after the sweep finishes")
    sweep.add_argument("--refresh-ms", type=int, default=1000,
                       help="dashboard panel refresh period")
    sweep.add_argument("--fleet-trace-out", default=None, metavar="JSON",
                       help="write the merged fleet Perfetto trace here")
    sweep.add_argument("--fleet-report-out", default=None, metavar="JSON",
                       help="write the FleetReport JSON here")
    sweep.add_argument("--stall-timeout", type=float, default=None,
                       help="absolute no-heartbeat bound (s) before a "
                            "worker counts as stalled (default: derived "
                            "from observed job wall-times)")
    sweep.add_argument("--inject-stall", default=None, metavar="TAG",
                       help="fault injection: freeze the worker that "
                            "picks up the job with this tag (e.g. "
                            "'cp=0.1:dma-ta') to exercise the watchdog")
    sweep.add_argument("--inject-stall-s", type=float, default=5.0,
                       help="how long the injected freeze lasts "
                            "(default 5s; keep it short — the frozen "
                            "worker also delays interpreter exit)")

    trace_cmd = commands.add_parser(
        "trace", help="run one traced simulation and export a "
                      "Chrome-trace/Perfetto JSON")
    trace_cmd.add_argument("trace")
    trace_cmd.add_argument("--technique", choices=TECHNIQUES,
                           default="dma-ta-pl")
    trace_cmd.add_argument("--engine", choices=ENGINES, default="fluid")
    trace_cmd.add_argument("--cp-limit", type=float, default=None)
    trace_cmd.add_argument("--mu", type=float, default=None)
    trace_cmd.add_argument("--seed", type=int, default=0)
    trace_cmd.add_argument("--out", required=True,
                           help="output trace file (load it at "
                                "https://ui.perfetto.dev)")
    trace_cmd.add_argument("--profile", action="store_true",
                           help="profile the engine run and attach a "
                                "'profile' track to the export")

    audit = commands.add_parser(
        "audit", help="run one audited simulation: latency waterfalls, "
                      "energy-conservation ledger, slack-guarantee replay")
    audit.add_argument("trace")
    audit.add_argument("--technique", choices=TECHNIQUES, default="dma-ta")
    audit.add_argument("--engine", choices=ENGINES, default="fluid")
    audit.add_argument("--cp-limit", type=float, default=None)
    audit.add_argument("--mu", type=float, default=None)
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--strict", action="store_true",
                       help="fail fast: raise at the first violation and "
                            "exit non-zero (default: warn and exit 0)")
    audit.add_argument("--slowest", type=int, default=8,
                       help="worst-case transfer waterfalls to retain")
    audit.add_argument("--inject-undercharge", type=float, default=0.0,
                       metavar="FRACTION",
                       help="fault injection: scale the slack account's "
                            "pessimistic epoch charge by (1 - FRACTION); "
                            "the auditor must catch the under-charge "
                            "(requires a DMA-TA technique)")
    audit.add_argument("--out", default=None,
                       help="write the violation/waterfall report (JSON) "
                            "to this file")
    audit.add_argument("--trace-out", default=None,
                       help="also export a Chrome-trace/Perfetto JSON of "
                            "the run's events plus the slowest-transfer "
                            "waterfall spans on the audit track")

    stats = commands.add_parser(
        "stats", help="run one simulation and print its metrics report")
    stats.add_argument("trace")
    stats.add_argument("--technique", choices=TECHNIQUES,
                       default="dma-ta-pl")
    stats.add_argument("--engine", choices=ENGINES, default="fluid")
    stats.add_argument("--cp-limit", type=float, default=None)
    stats.add_argument("--mu", type=float, default=None)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument("--histogram", action="append", default=None,
                       metavar="NAME",
                       help="print the full digest of this histogram "
                            "(repeatable); a missing histogram warns "
                            "instead of failing — e.g. ta.batch_size "
                            "is only recorded when DMA-TA runs")

    watch = commands.add_parser(
        "watch", help="run one simulation while serving a live telemetry "
                      "dashboard (HTML + Prometheus /metrics + SSE)")
    watch.add_argument("trace")
    watch.add_argument("--technique", choices=TECHNIQUES,
                       default="dma-ta-pl")
    watch.add_argument("--engine", choices=ENGINES, default="fluid")
    watch.add_argument("--cp-limit", type=float, default=None)
    watch.add_argument("--mu", type=float, default=None)
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument("--sample-cycles", type=float, default=None,
                       help="sampling period in memory cycles (default: "
                            "the run's DMA-TA epoch length)")
    watch.add_argument("--capacity", type=int, default=2048,
                       help="telemetry ring rows kept in memory; on "
                            "overflow every other row is dropped and "
                            "the stride doubles (O(capacity) memory)")
    watch.add_argument("--serve-port", type=int, default=8765,
                       help="dashboard HTTP port (0 = ephemeral; see "
                            "--port-file)")
    watch.add_argument("--host", default="127.0.0.1",
                       help="dashboard bind address")
    watch.add_argument("--no-browser", action="store_true",
                       help="do not open the dashboard in a browser")
    watch.add_argument("--port-file", default=None,
                       help="write the bound port to this file once "
                            "listening (for scripts pairing with "
                            "--serve-port 0)")
    watch.add_argument("--linger-s", type=float, default=10.0,
                       help="keep the dashboard up this many seconds "
                            "after the run ends (0 = exit immediately)")
    watch.add_argument("--refresh-ms", type=int, default=1000,
                       help="dashboard auto-refresh period")
    watch.add_argument("--telemetry-out", default=None, metavar="JSONL",
                       help="append every sample and anomaly to this "
                            "JSONL stream")
    watch.add_argument("--inject-spike", type=float, default=0.0,
                       metavar="CYCLES",
                       help="fault injection: add this many phantom "
                            "degradation cycles to the observed series "
                            "mid-run — the CUSUM detector must flag it; "
                            "the simulation itself is untouched")
    watch.add_argument("--inject-spike-at", type=float, default=0.5,
                       metavar="FRAC",
                       help="where in the trace the injected spike "
                            "lands (fraction of the duration)")

    diff = commands.add_parser(
        "diff", help="run two configurations of one trace, compare their "
                     "per-epoch state-digest chains, and bisect to the "
                     "first divergent epoch and field (exit 0 identical, "
                     "2 diverged, 1 error)")
    diff.add_argument("trace")
    diff.add_argument("--technique", choices=TECHNIQUES, default="dma-ta")
    diff.add_argument("--engine", choices=ENGINES, default="fluid",
                      help="engine for both sides (see --engines)")
    diff.add_argument("--engines", default=None, metavar="A,B",
                      help="engine pair, e.g. precise,precise-scalar — "
                           "overrides --engine per side")
    diff.add_argument("--cp-limit", type=float, default=None)
    diff.add_argument("--mu", type=float, default=None)
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--technique-b", choices=TECHNIQUES, default=None,
                      help="run B technique (default: same as run A)")
    diff.add_argument("--cp-limit-b", type=float, default=None,
                      help="run B CP-Limit (default: same as run A)")
    diff.add_argument("--mu-b", type=float, default=None,
                      help="run B mu (default: same as run A)")
    diff.add_argument("--seed-b", type=int, default=None,
                      help="run B layout seed (default: same as run A)")
    diff.add_argument("--epoch-cycles", type=float, default=None,
                      help="digest period in memory cycles (default: the "
                           "run's DMA-TA epoch length)")
    diff.add_argument("--capacity", type=int, default=4096,
                      help="digest ring rows kept; on overflow every "
                           "other row is dropped and the stride doubles")
    diff.add_argument("--against", default=None, metavar="TRAIL_JSON",
                      help="compare run A against a digest trail saved "
                           "with --save instead of running B (chain-"
                           "level comparison only)")
    diff.add_argument("--save", default=None, metavar="TRAIL_JSON",
                      help="write run A's digest trail to this file")
    diff.add_argument("--inject-epoch-skew", type=int, default=None,
                      metavar="EPOCH",
                      help="fault injection: add --skew-cycles phantom "
                           "degradation cycles to run B's observed "
                           "series at exactly this digest epoch — the "
                           "bisection must localise it; the simulation "
                           "itself is untouched")
    diff.add_argument("--skew-cycles", type=float, default=1.0,
                      help="size of the injected epoch skew")
    diff.add_argument("--no-causes", action="store_true",
                      help="skip tracing the bisection re-runs for "
                           "window causes (faster)")
    diff.add_argument("--trace-out", default=None,
                      help="write an aligned two-run Chrome-trace/"
                           "Perfetto JSON export to this file")
    diff.add_argument("--json-out", default=None,
                      help="write the structured divergence report "
                           "(JSON) to this file")
    diff.add_argument("--serve", action="store_true",
                      help="serve the finished report on a local HTTP "
                           "dashboard")
    diff.add_argument("--serve-port", type=int, default=0,
                      help="dashboard HTTP port (0 = ephemeral)")
    diff.add_argument("--host", default="127.0.0.1",
                      help="dashboard bind address")
    diff.add_argument("--port-file", default=None,
                      help="write the bound port to this file once "
                           "listening")
    diff.add_argument("--linger-s", type=float, default=10.0,
                      help="keep the --serve dashboard up this many "
                           "seconds after printing the report")

    calibrate = commands.add_parser(
        "calibrate", help="show the mu a CP-Limit translates to")
    calibrate.add_argument("trace")
    calibrate.add_argument("--cp-limit", type=float, default=0.10)

    report = commands.add_parser(
        "report", help="run the full technique matrix and print a report")
    report.add_argument("trace")
    report.add_argument("--cp-limits", default="0.02,0.05,0.1,0.2,0.3")
    report.add_argument("-o", "--output", default=None,
                        help="also write the report to this file")

    from repro.bench.cli import add_bench_parser

    add_bench_parser(commands)

    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------

def _cmd_generate(args) -> int:
    trace = GENERATORS[args.kind](duration_ms=args.duration_ms,
                                  seed=args.seed)
    write_trace(trace, args.output)
    stats = characterize(trace)
    print(f"wrote {args.output}: {stats.transfers} transfers over "
          f"{stats.duration_ms:.1f} ms "
          f"({stats.transfers_per_ms:.1f}/ms, "
          f"{stats.proc_accesses_per_ms:.0f} proc accesses/ms)")
    return 0


def _cmd_replay(args) -> int:
    from repro.obs.audit import Auditor

    window_start, window_s = 0.0, None
    if args.window:
        try:
            start_text, _, dur_text = args.window.partition(":")
            window_start = float(start_text)
            window_s = float(dur_text) if dur_text else None
        except ValueError as exc:
            raise ReproError(
                f"bad --window {args.window!r} (want START:DUR "
                f"in seconds): {exc}") from exc

    sim_config = SimulationConfig()
    num_pages = args.num_pages or sim_config.memory.total_pages
    if num_pages > sim_config.memory.total_pages:
        raise ReproError(
            f"--num-pages {num_pages} exceeds the simulated memory "
            f"({sim_config.memory.total_pages} pages)")
    replay_config = ReplayConfig(
        page_bytes=sim_config.memory.page_bytes,
        num_pages=num_pages,
        page_layout=args.page_layout,
        num_buses=sim_config.buses.count,
        window_start_s=window_start,
        window_s=window_s,
        time_compression=args.time_compression,
        proc_accesses_per_io=args.proc_per_io,
    )
    trace = replay_trace(args.csv, config=replay_config,
                         dialect=args.dialect)
    stats = characterize(trace)
    meta = trace.metadata
    print(f"{trace.name}: {meta['block_ios']} block I/Os "
          f"({meta['block_reads']} reads / {meta['block_writes']} writes) "
          f"over {meta['trace_span_s']:.3f} s of trace time "
          f"-> {stats.transfers} transfers / {stats.duration_ms:.2f} ms "
          f"simulated ({stats.transfers_per_ms:.1f}/ms, "
          f"{len(meta['namespaces'])} disk namespace(s))")
    if args.output:
        write_trace(trace, args.output)
        print(f"wrote {args.output}")
    if args.technique is None:
        return 0

    auditor = Auditor(strict=True)
    from repro.errors import AuditError

    try:
        result = simulate(trace, technique=args.technique,
                          engine=args.engine, cp_limit=args.cp_limit,
                          mu=args.mu, seed=args.seed, tracer=auditor)
        report = auditor.finalize(result)
    except AuditError as exc:
        print(f"audit: FAIL (strict) — {exc}", file=sys.stderr)
        return 1
    print()
    print(result.summary())
    print()
    print(report.render())
    if not report.ok:
        print(f"audit: {len(report.violations)} violation kind(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_characterize(args) -> int:
    trace = read_trace(args.trace)
    stats = characterize(trace)
    rows = [
        ["duration", f"{stats.duration_ms:.2f} ms"],
        ["transfers", stats.transfers],
        ["transfer rate", f"{stats.transfers_per_ms:.1f}/ms"],
        ["network rate", f"{stats.net_transfers_per_ms:.1f}/ms"],
        ["disk rate", f"{stats.disk_transfers_per_ms:.1f}/ms"],
        ["processor rate", f"{stats.proc_accesses_per_ms:.0f}/ms"],
        ["proc per transfer", f"{stats.proc_accesses_per_transfer:.0f}"],
        ["mean transfer", f"{stats.mean_transfer_bytes:.0f} B"],
        ["pages referenced", stats.pages_referenced],
        ["top-20% access share",
         f"{stats.top20_access_fraction * 100:.1f}%"],
        ["client requests", len(trace.clients)],
    ]
    print(format_table(["metric", "value"], rows, title=trace.name))
    if args.cdf:
        points = popularity_cdf(trace, points=10)
        print()
        print(format_table(
            ["pages", "accesses"],
            [[f"{x:.0%}", f"{y:.1%}"] for x, y in points],
            title="popularity CDF (Figure 4)"))
    return 0


def _print_profile(result, top: int = 10) -> None:
    if not result.profile:
        return
    print("\nhot paths (cProfile, cumulative):")
    for entry in result.profile[:top]:
        print(f"  {entry['cum_s']:8.3f}s  {entry['ncalls']:>9}x  "
              f"{entry['func']}")


def _cmd_simulate(args) -> int:
    trace = read_trace(args.trace)
    result = simulate(trace, technique=args.technique, engine=args.engine,
                      cp_limit=args.cp_limit, mu=args.mu, seed=args.seed,
                      profile=args.profile or None)
    print(result.summary())
    _print_profile(result)
    return 0


def _cmd_compare(args) -> int:
    trace = read_trace(args.trace)
    baseline = simulate(trace, technique="baseline")
    ta = simulate(trace, technique="dma-ta", cp_limit=args.cp_limit)
    tapl = simulate(trace, technique="dma-ta-pl", cp_limit=args.cp_limit)
    print(format_breakdown(
        [baseline, ta, tapl], labels=["baseline", "DMA-TA", "DMA-TA-PL"],
        title=f"{trace.name} at CP-Limit {args.cp_limit:.0%}"))
    rows = []
    for result, label in ((ta, "DMA-TA"), (tapl, "DMA-TA-PL")):
        rows.append([
            label,
            f"{result.energy_savings_vs(baseline):+.1%}",
            f"{result.client_degradation_vs(baseline):+.2%}",
            f"{result.utilization_factor:.3f}",
        ])
    print()
    print(format_table(
        ["technique", "savings", "client degradation", "uf"], rows))
    return 0


def _cmd_sweep(args) -> int:
    import time

    from repro.analysis.sweep import sweep_cp_limit, sweep_errors
    from repro.exec import ResultCache

    try:
        cp_limits = [float(x) for x in args.cp_limits.split(",") if x]
    except ValueError as exc:
        raise ReproError(f"bad --cp-limits list: {exc}") from exc
    if not cp_limits:
        raise ReproError("empty --cp-limits list")
    if args.jobs < 1:
        raise ReproError("--jobs must be at least 1")
    trace = read_trace(args.trace)
    cache = ResultCache(root=args.cache_dir) if args.cache else None

    want_fleet = args.fleet
    if want_fleet is None:  # auto: on when there is something to observe
        want_fleet = bool(args.jobs > 1 or args.watch
                          or args.fleet_trace_out or args.fleet_report_out
                          or args.inject_stall)
    fleet = None
    server = None
    if want_fleet:
        from repro.obs.fleet import FleetCollector, FleetConfig

        fleet = FleetCollector(FleetConfig(
            stall_after_s=args.stall_timeout,
            inject_stall_tag=args.inject_stall or "",
            inject_stall_s=args.inject_stall_s if args.inject_stall
            else 0.0,
        ))
    if args.watch:
        from repro.obs.serve import FleetServer

        server = FleetServer(
            fleet, host=args.host, port=args.serve_port,
            title=f"{trace.name} / {args.technique}",
            refresh_ms=args.refresh_ms)
        server.start()
        print(f"fleet dashboard: {server.url} "
              f"(snapshot at {server.url}fleet.json, "
              f"SSE at {server.url}events)")
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{server.port}\n")
        if not args.no_browser:
            import webbrowser

            webbrowser.open(server.url)

    try:
        points = sweep_cp_limit(trace, cp_limits, [args.technique],
                                max_workers=args.jobs, cache=cache,
                                fleet=fleet)
        exit_code = _report_sweep(args, trace, points, cache, fleet)
        if server is not None and args.linger_s > 0:
            print(f"dashboard stays up for {args.linger_s:g}s "
                  "(Ctrl-C to stop early)")
            try:
                time.sleep(args.linger_s)
            except KeyboardInterrupt:
                pass
    finally:
        if server is not None:
            server.stop()
        if fleet is not None:
            fleet.close()
    return exit_code


def _report_sweep(args, trace, points, cache, fleet) -> int:
    from repro.analysis.sweep import sweep_errors

    chart = {p.x: p.savings for p in points if p.ok}
    if chart:
        print(savings_chart(chart,
                            title=f"{trace.name}: {args.technique} savings "
                                  f"vs CP-Limit"))
    walls = [p.wall_s for p in points if p.wall_s > 0]
    if walls:
        print(f"workers: {len(walls)} jobs computed in "
              f"{sum(walls):.2f}s total "
              f"(mean {sum(walls) / len(walls):.2f}s, "
              f"max {max(walls):.2f}s)")
    if cache is not None:
        stats = cache.stats
        print(f"cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.stores} stores, {stats.evictions} evictions, "
              f"{stats.corrupt} corrupt ({cache.root})")
    flagged = [(p, finding) for p in points for finding in p.audit]
    if flagged:
        print(f"audit: {len(flagged)} finding(s) across "
              f"{len({id(p) for p, _ in flagged})} point(s):",
              file=sys.stderr)
        for point, finding in flagged:
            print(f"  x={point.x:g} {point.technique}: {finding}",
                  file=sys.stderr)
    else:
        print(f"audit: {sum(1 for p in points if p.ok)} point(s) passed "
              "result invariants")
    if fleet is not None:
        import json as json_module

        report = fleet.report()
        print(report.render())
        if args.fleet_report_out:
            with open(args.fleet_report_out, "w",
                      encoding="utf-8") as handle:
                json_module.dump(report.as_dict(), handle, indent=2)
            print(f"wrote {args.fleet_report_out}: fleet report "
                  f"({report.events_received} worker events)")
        if args.fleet_trace_out:
            path = fleet.write_chrome_trace(
                args.fleet_trace_out,
                label=f"{trace.name} / {args.technique}")
            print(f"wrote {path}: merged fleet trace "
                  f"({report.spans_merged} job spans) — load it at "
                  "https://ui.perfetto.dev")
    failures = sweep_errors(points)
    if failures:
        print(failures, file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import RingTracer, profile_events, write_chrome_trace

    trace = read_trace(args.trace)
    tracer = RingTracer()
    result = simulate(trace, technique=args.technique, engine=args.engine,
                      cp_limit=args.cp_limit, mu=args.mu, seed=args.seed,
                      tracer=tracer, profile=args.profile or None)
    events = list(tracer.events)
    if result.profile:
        events.extend(profile_events(result.profile))
    if not events:
        print(result.summary())
        print("warning: run produced no trace events; skipping export "
              "(events flow only while a tracer is attached — repro "
              "trace/audit attach one automatically; from Python pass "
              "simulate(..., tracer=RingTracer()); for live time series "
              "use repro watch --telemetry-out)",
              file=sys.stderr)
        return 0
    path = write_chrome_trace(events, args.out, label=trace.name)
    print(result.summary())
    extra = (f", {len(result.profile)} profile spans"
             if result.profile else "")
    print(f"\nwrote {path}: {len(tracer.events)} events "
          f"({tracer.dropped} dropped{extra}) — load it at "
          "https://ui.perfetto.dev")
    return 0


def _cmd_audit(args) -> int:
    from repro.errors import AuditError
    from repro.obs import RingTracer, write_chrome_trace
    from repro.obs.audit import Auditor, write_audit_report
    from repro.sim.run import validate_simulation_args

    validate_simulation_args(args.technique, args.engine,
                             mu=args.mu, cp_limit=args.cp_limit)
    trace = read_trace(args.trace)
    config = SimulationConfig()
    if args.cp_limit is not None:
        config = config.with_mu(calibrate_mu(trace, config,
                                             args.cp_limit).mu)
    elif args.mu is not None:
        config = config.with_mu(args.mu)

    # Construct the engine directly (rather than through simulate()) so
    # the under-charge fault can be injected into its slack account.
    ring = RingTracer() if args.trace_out else None
    auditor = Auditor(strict=args.strict, slowest=max(0, args.slowest),
                      downstream=ring)
    if args.engine == "fluid":
        from repro.sim.fluid import FluidEngine

        engine = FluidEngine(trace, config, technique=args.technique,
                             seed=args.seed, tracer=auditor)
    else:
        from repro.sim.precise import PreciseEngine

        engine = PreciseEngine(trace, config, technique=args.technique,
                               seed=args.seed, tracer=auditor,
                               vectorize=args.engine != "precise-scalar")
    if args.inject_undercharge:
        slack = getattr(engine.controller, "slack", None)
        if slack is None:
            raise ReproError(
                "--inject-undercharge needs a slack account; use a "
                "DMA-TA technique (dma-ta or dma-ta-pl)")
        slack.undercharge_fraction = args.inject_undercharge

    try:
        result = engine.run()
        report = auditor.finalize(result)
    except AuditError as exc:
        print(f"audit: FAIL (strict) — {exc}", file=sys.stderr)
        report = auditor.finalize(None)
        if args.out:
            path = write_audit_report(report, args.out)
            print(f"wrote {path}", file=sys.stderr)
        return 1
    print(result.summary())
    print()
    print(report.render())
    if args.out:
        path = write_audit_report(report, args.out)
        print(f"\nwrote {path}")
    if ring is not None:
        events = list(ring.events) + report.waterfall_events()
        path = write_chrome_trace(events, args.trace_out, label=trace.name)
        print(f"wrote {path}: {len(events)} events (slack counter on the "
              "controller track, waterfalls on the audit tracks) — load "
              "it at https://ui.perfetto.dev")
    if not report.ok:
        print(f"audit: {len(report.violations)} violation kind(s) "
              f"detected", file=sys.stderr)
        return 1 if args.strict else 0
    return 0


def _audit_health_line(report) -> str:
    """One-line auditor verdict appended to ``repro stats`` output."""
    if report.ok:
        return "\naudit: ok (0 violations)"
    counts: dict[str, int] = {}
    for violation in report.violations:
        counts[violation.kind] = counts.get(violation.kind, 0) + 1
    detail = ", ".join(f"{kind}: {n}" for kind, n in sorted(counts.items()))
    total = sum(counts.values())
    return (f"\naudit: {total} violation(s) — {detail} "
            "(run repro audit for the full report)")


def _cmd_stats(args) -> int:
    from repro.obs import render_metrics
    from repro.obs.audit import Auditor

    trace = read_trace(args.trace)
    auditor = Auditor(strict=False)
    result = simulate(trace, technique=args.technique, engine=args.engine,
                      cp_limit=args.cp_limit, mu=args.mu, seed=args.seed,
                      tracer=auditor)
    report = auditor.finalize(result)
    title = f"{trace.name} / {args.technique} ({args.engine})"
    if result.metrics is None:
        print("warning: this run recorded no metrics report (metrics "
              "come from simulate()'s registry snapshot — re-run via "
              "repro stats/simulate, or use repro trace --out / repro "
              "watch --telemetry-out for event and telemetry streams)",
              file=sys.stderr)
        print(f"{title}\n(no metrics recorded)")
        print(_audit_health_line(report))
        return 0
    print(render_metrics(result.metrics, title=title))
    print(_audit_health_line(report))
    for name in args.histogram or ():
        digest = result.metrics.histograms.get(name)
        if digest is None:
            have = ", ".join(sorted(result.metrics.histograms)) or "none"
            print(f"warning: histogram {name!r} was not recorded by "
                  f"this run (have: {have}) — e.g. ta.batch_size only "
                  "exists when a DMA-TA technique runs", file=sys.stderr)
            continue
        print(f"\nhistogram {name}:")
        for field in ("count", "total", "min", "max", "mean",
                      "p50", "p90", "p99"):
            print(f"  {field:<6} {getattr(digest, field):g}")
    return 0


def _cmd_watch(args) -> int:
    import time

    from repro.obs.serve import TelemetryServer
    from repro.obs.telemetry import (
        JsonlExporter,
        TelemetryConfig,
        TelemetrySampler,
    )
    from repro.sim.run import validate_simulation_args

    validate_simulation_args(args.technique, args.engine,
                             mu=args.mu, cp_limit=args.cp_limit)
    trace = read_trace(args.trace)
    exporters = []
    jsonl = None
    if args.telemetry_out:
        jsonl = JsonlExporter(args.telemetry_out)
        exporters.append(jsonl)
    config = TelemetryConfig(
        sample_cycles=args.sample_cycles,
        capacity=args.capacity,
        inject_spike_cycles=args.inject_spike,
        inject_spike_at_frac=args.inject_spike_at,
    )
    sampler = TelemetrySampler(config, exporters=exporters)
    server = TelemetryServer(
        sampler, host=args.host, port=args.serve_port,
        title=f"{trace.name} / {args.technique} ({args.engine})",
        refresh_ms=args.refresh_ms)
    sampler.exporters.extend(server.exporters)
    server.start()
    print(f"dashboard: {server.url} (Prometheus at {server.url}metrics, "
          f"SSE at {server.url}events)")
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{server.port}\n")
    if not args.no_browser:
        import webbrowser

        webbrowser.open(server.url)
    try:
        result = simulate(trace, technique=args.technique,
                          engine=args.engine, cp_limit=args.cp_limit,
                          mu=args.mu, seed=args.seed, telemetry=sampler)
        print(result.summary())
        snapshot = sampler.store.snapshot()
        print(f"\ntelemetry: {snapshot.ticks} samples "
              f"({len(snapshot)} retained, stride {snapshot.stride}), "
              f"{len(sampler.anomalies)} anomalies")
        for anomaly in sampler.anomalies:
            print(f"telemetry.anomaly: {anomaly.kind} "
                  f"@ {anomaly.ts:,.0f}: {anomaly.message}")
        if jsonl is not None:
            print(f"wrote {jsonl.path}: {jsonl.lines} JSONL lines")
        if args.linger_s > 0:
            print(f"dashboard stays up for {args.linger_s:g}s "
                  "(Ctrl-C to stop early)")
            try:
                time.sleep(args.linger_s)
            except KeyboardInterrupt:
                pass
    finally:
        server.stop()
        sampler.close()
    return 0


def _cmd_diff(args) -> int:
    """``repro diff``: first-divergence bisection between two runs.

    Exit codes (satellite convention, mirroring ``fleet.stall:``):
    0 = chains identical, 2 = diverged (the report names the first
    divergent epoch/field), 1 = any error. Errors are handled here —
    not left to :func:`main` — because ``main`` maps :class:`ReproError`
    to exit 2, which this command reserves for divergence.
    """
    import time

    from repro.errors import DiffError
    from repro.obs.diff import (
        DigestConfig,
        SimRunSpec,
        diff_runs,
        read_trail,
        write_trail,
    )
    from repro.sim.run import validate_simulation_args

    try:
        engine_a = engine_b = args.engine
        if args.engines:
            parts = [part.strip() for part in args.engines.split(",")]
            if len(parts) != 2 or not all(p in ENGINES for p in parts):
                raise DiffError(f"--engines wants two of {ENGINES} "
                                f"(comma-separated), got {args.engines!r}")
            engine_a, engine_b = parts
        validate_simulation_args(args.technique, engine_a,
                                 mu=args.mu, cp_limit=args.cp_limit)
        technique_b = args.technique_b or args.technique
        mu_b, cp_limit_b = args.mu, args.cp_limit
        if args.mu_b is not None:
            mu_b, cp_limit_b = args.mu_b, None
        if args.cp_limit_b is not None:
            mu_b, cp_limit_b = None, args.cp_limit_b
        seed_b = args.seed_b if args.seed_b is not None else args.seed
        validate_simulation_args(technique_b, engine_b,
                                 mu=mu_b, cp_limit=cp_limit_b)
        trace = read_trace(args.trace)
        spec_a = SimRunSpec(trace=trace, technique=args.technique,
                            engine=engine_a, mu=args.mu,
                            cp_limit=args.cp_limit, seed=args.seed)
        spec_b = SimRunSpec(trace=trace, technique=technique_b,
                            engine=engine_b, mu=mu_b,
                            cp_limit=cp_limit_b, seed=seed_b,
                            inject_skew_epoch=args.inject_epoch_skew,
                            inject_skew_cycles=args.skew_cycles)

        tracer_a = tracer_b = None
        if args.trace_out:
            from repro.obs.tracer import RingTracer

            tracer_a, tracer_b = RingTracer(), RingTracer()

        trail_a = None
        if args.save:
            # Run A once up front so its trail can be persisted; the
            # diff reuses it instead of re-running.
            trail_a = spec_a.runner()(
                DigestConfig(epoch_cycles=args.epoch_cycles,
                             capacity=args.capacity), tracer=tracer_a)
            write_trail(trail_a, args.save)
            print(f"wrote {args.save}: {trail_a.ticks} digest epochs "
                  f"(chain tip {trail_a.chain_tip})")

        if args.against:
            trail_b, run_b = read_trail(args.against), None
            label_b = f"trail {args.against}"
        else:
            trail_b, run_b = None, spec_b.runner()
            label_b = spec_b.label
        report = diff_runs(spec_a.runner(), run_b,
                           label_a=spec_a.label, label_b=label_b,
                           epoch_cycles=args.epoch_cycles,
                           capacity=args.capacity,
                           trail_a=trail_a, trail_b=trail_b,
                           collect_causes=not args.no_causes,
                           tracer_a=tracer_a, tracer_b=tracer_b)

        print(report.render())
        print(report.summary_line())
        if args.json_out:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                json.dump(report.as_dict(), handle, indent=2)
            print(f"wrote {args.json_out}")
        if args.trace_out:
            from repro.obs.export import diff_chrome_trace

            payload = diff_chrome_trace(
                tracer_a.events if tracer_a is not None else [],
                tracer_b.events if tracer_b is not None else [],
                label_a=spec_a.label, label_b=label_b)
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            print(f"wrote {args.trace_out} (aligned two-run Perfetto "
                  "export)")
        if args.serve:
            from repro.obs.serve import DiffServer

            server = DiffServer(report, host=args.host,
                                port=args.serve_port,
                                title=f"repro diff: {trace.name}")
            server.start()
            print(f"diff report at {server.url}")
            if args.port_file:
                with open(args.port_file, "w", encoding="utf-8") as handle:
                    handle.write(f"{server.port}\n")
            if args.linger_s > 0:
                print(f"report stays up for {args.linger_s:g}s "
                      "(Ctrl-C to stop early)")
                try:
                    time.sleep(args.linger_s)
                except KeyboardInterrupt:
                    pass
            server.stop()
    except (ReproError, FileNotFoundError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0 if report.identical else 2


def _cmd_calibrate(args) -> int:
    trace = read_trace(args.trace)
    calibration = calibrate_mu(trace, SimulationConfig(), args.cp_limit)
    rows = [
        ["CP-Limit", f"{calibration.cp_limit:.0%}"],
        ["mu", f"{calibration.mu:.3f}"],
        ["mean client response",
         f"{calibration.mean_response_cycles / 1.6e6:.3f} ms"],
        ["requests per client", f"{calibration.requests_per_client:.0f}"],
        ["clients used", calibration.clients],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"CP-Limit calibration for {trace.name}"))
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import build_report, render_report

    try:
        cp_limits = tuple(float(x) for x in args.cp_limits.split(",") if x)
    except ValueError as exc:
        raise ReproError(f"bad --cp-limits list: {exc}") from exc
    trace = read_trace(args.trace)
    report = build_report(trace, cp_limits=cp_limits)
    text = render_report(report)
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n(report written to {args.output})")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.cli import cmd_bench

    return cmd_bench(args)


_COMMANDS = {
    "generate": _cmd_generate,
    "replay": _cmd_replay,
    "characterize": _cmd_characterize,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
    "audit": _cmd_audit,
    "stats": _cmd_stats,
    "watch": _cmd_watch,
    "diff": _cmd_diff,
    "calibrate": _cmd_calibrate,
    "report": _cmd_report,
    "bench": _cmd_bench,
}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line (``--log-format json``).

    Fields: ``ts`` (epoch seconds), ``level``, ``logger``, ``message``,
    plus ``exc`` with the formatted traceback when one is attached.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def _configure_logging(level_name: str | None,
                       format_name: str = "text") -> None:
    if format_name not in ("text", "json"):
        # An invalid $REPRO_LOG_FORMAT bypasses argparse's choices=
        # (it becomes the default); degrade rather than crash.
        print(f"warning: unknown log format {format_name!r} ignored "
              "(want text or json)", file=sys.stderr)
        format_name = "text"
    if not level_name:
        if format_name != "json":
            return
        level_name = "info"  # asking for JSON logs implies wanting logs
    level = getattr(logging, level_name.upper(), None)
    if not isinstance(level, int):
        print(f"warning: unknown log level {level_name!r} ignored",
              file=sys.stderr)
        return
    if format_name == "json":
        handler = logging.StreamHandler()
        handler.setFormatter(JsonLogFormatter())
        logging.basicConfig(level=level, handlers=[handler])
    else:
        logging.basicConfig(
            level=level,
            format="%(levelname)s %(name)s: %(message)s")


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.log_level, args.log_format)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
