"""Configuration objects for the simulator.

A :class:`SimulationConfig` bundles the memory geometry, the I/O bus set,
the low-level power policy, and the DMA-aware technique parameters. The
defaults reproduce the paper's evaluation platform (Section 5.1):

* 32 memory chips of 32 MB each (1 GB total), 512-Mb 1600-MHz RDRAM
  (Table 1 power model), 8-KB pages;
* three 133-MHz 64-bit PCI-X buses (1.064 GB/s each);
* 8-byte DMA-memory requests;
* the dynamic-threshold policy as the baseline low-level manager;
* 2 popularity groups for PL.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Mapping

from repro import units
from repro.errors import ConfigurationError
from repro.energy.policies import PowerPolicy, default_dynamic_policy
from repro.energy.rdram import rdram_1600_model
from repro.energy.states import PowerModel

MB = 1 << 20


@dataclass(frozen=True)
class MemoryConfig:
    """Memory subsystem geometry and device model.

    Attributes:
        num_chips: number of independently power-managed chips.
        chip_bytes: capacity of each chip.
        page_bytes: OS/DMA page size; transfers are page-aligned.
        request_bytes: size of one DMA-memory request (8 B on PCI-X).
        power_model: device power/timing model (Table 1 by default).
    """

    num_chips: int = 32
    chip_bytes: int = 32 * MB
    page_bytes: int = 8192
    request_bytes: int = 8
    power_model: PowerModel = field(default_factory=rdram_1600_model)

    def __post_init__(self) -> None:
        if self.num_chips <= 0:
            raise ConfigurationError("num_chips must be positive")
        if self.chip_bytes <= 0 or self.page_bytes <= 0:
            raise ConfigurationError("sizes must be positive")
        if self.page_bytes > self.chip_bytes:
            raise ConfigurationError("a page must fit in a chip")
        if self.chip_bytes % self.page_bytes:
            raise ConfigurationError("chip size must be a page multiple")
        if self.request_bytes <= 0:
            raise ConfigurationError("request_bytes must be positive")

    @property
    def pages_per_chip(self) -> int:
        return self.chip_bytes // self.page_bytes

    @property
    def total_pages(self) -> int:
        return self.pages_per_chip * self.num_chips

    @property
    def total_bytes(self) -> int:
        return self.chip_bytes * self.num_chips

    @property
    def serve_cycles(self) -> float:
        """Chip-busy cycles per DMA-memory request (4 at Table 1 defaults)."""
        return self.power_model.serve_cycles(self.request_bytes)


@dataclass(frozen=True)
class BusConfig:
    """The I/O bus complex.

    Attributes:
        count: number of buses (the paper simulates three).
        bandwidth_bytes_per_s: per-bus bandwidth (PCI-X: 1.064 GB/s).
        sharing: ``"fifo"`` (the paper's model — a bus carries one
            transfer at a time at full rate; later transfers queue) or
            ``"fair"`` (request-granularity round-robin, modelled as an
            equal bandwidth split; an ablation that dilutes alignment).
    """

    count: int = 3
    bandwidth_bytes_per_s: float = units.PCIX_BANDWIDTH
    sharing: str = "fifo"

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigurationError("bus count must be positive")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bus bandwidth must be positive")
        if self.sharing not in ("fifo", "fair"):
            raise ConfigurationError(
                f"unknown bus sharing {self.sharing!r}; "
                "expected 'fifo' or 'fair'")


@dataclass(frozen=True)
class ProcessorConfig:
    """Processor-side access parameters.

    Attributes:
        cache_line_bytes: granularity of processor-initiated accesses.
        priority_over_dma: Section 4.1.3 solution 1 — processor accesses
            are always serviced before pending DMA-memory requests.
    """

    cache_line_bytes: int = 64
    priority_over_dma: bool = True

    def __post_init__(self) -> None:
        if self.cache_line_bytes <= 0:
            raise ConfigurationError("cache_line_bytes must be positive")


@dataclass(frozen=True)
class TemporalAlignmentConfig:
    """Parameters of the DMA-TA technique (Section 4.1).

    Attributes:
        mu: acceptable average per-request service-time degradation; the
            average DMA-memory request service time is guaranteed to stay
            within ``(1 + mu) * T``. Usually derived from a CP-Limit via
            :mod:`repro.core.cp_limit`.
        epoch_cycles: epoch length for the pessimistic slack charging.
            Results are insensitive to this as long as it is not too large.
        slack_release_fraction: release gathered requests when the projected
            queueing delay ``n*U/2`` reaches this fraction of the available
            slack ("close to the current Slack" in the paper).
        deadline_fraction: each buffered transfer is additionally released
            no later than its own slack budget — ``deadline_fraction * mu *
            T * num_requests`` after arrival. This per-transfer deadline
            keeps releases spread out in time (a transfer waiting for
            partners that never come is let through once it has consumed
            its share of the guarantee), bounding the client-perceived
            degradation below the configured CP-Limit.
    """

    mu: float = 0.0
    epoch_cycles: float = 2000.0
    slack_release_fraction: float = 1.0
    deadline_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ConfigurationError("mu must be non-negative")
        if self.epoch_cycles <= 0:
            raise ConfigurationError("epoch_cycles must be positive")
        if not 0 < self.slack_release_fraction <= 1:
            raise ConfigurationError(
                "slack_release_fraction must be in (0, 1]")
        if not 0 < self.deadline_fraction <= 1:
            raise ConfigurationError("deadline_fraction must be in (0, 1]")


@dataclass(frozen=True)
class PopularityLayoutConfig:
    """Parameters of the PL technique (Section 4.2).

    Attributes:
        num_groups: total number of popularity groups K (hot groups sized
            1, 2, 4, ... chips plus one cold group). 2 is the paper's best.
        hot_access_fraction: the tunable ``p`` — the hot chips together
            should absorb this fraction of DMA-memory requests.
        interval_cycles: page-migration interval (multiple epochs).
        counter_bits: width of the per-page DMA reference counters.
        aging_shift: right-shift applied to every counter at each interval
            boundary (0 resets counters instead).
        hysteresis_factor: a page already resident in the hot group stays
            hot as long as it ranks within ``hysteresis_factor`` times the
            hot page count. Rank noise at the hot/cold boundary otherwise
            flaps pages in and out every interval, and each flap is two
            page copies of pure overhead — the effect behind the paper's
            observation that "pages accessed 8 times are not necessarily
            hotter than pages that have been accessed 10 times".
        min_hot_references: a page needs at least this (aged) reference
            count to earn a hot frame. Counts of one are indistinguishable
            from sampling noise; migrating such pages is churn.
        opportunistic_copies: the Section 4.2.2 optimisation — migration
            copies proceed only during cycles their chips are active for
            other traffic anyway (soaking up active-idle waste), never
            waking a chip or keeping it awake on their own. Off by
            default, matching the paper's evaluated configuration ("these
            optimizations are still being implemented in our simulator").
            Fluid engine only.
        translation_table_entries: capacity of the controller's
            <old_location, new_location> table before a page-table flush.
    """

    num_groups: int = 2
    hot_access_fraction: float = 0.6
    interval_cycles: float = 8_000_000.0
    counter_bits: int = 8
    aging_shift: int = 1
    hysteresis_factor: float = 2.0
    min_hot_references: int = 2
    opportunistic_copies: bool = False
    translation_table_entries: int = 1024

    def __post_init__(self) -> None:
        if self.num_groups < 2:
            raise ConfigurationError("PL needs at least 2 groups (hot+cold)")
        if not 0 < self.hot_access_fraction < 1:
            raise ConfigurationError("hot_access_fraction must be in (0,1)")
        if self.interval_cycles <= 0:
            raise ConfigurationError("interval_cycles must be positive")
        if self.counter_bits <= 0 or self.counter_bits > 32:
            raise ConfigurationError("counter_bits must be in [1, 32]")
        if self.aging_shift < 0:
            raise ConfigurationError("aging_shift must be non-negative")
        if self.hysteresis_factor < 1.0:
            raise ConfigurationError("hysteresis_factor must be >= 1")
        if self.min_hot_references < 1:
            raise ConfigurationError("min_hot_references must be >= 1")
        if self.translation_table_entries <= 0:
            raise ConfigurationError("translation table must be non-empty")


def canonical_value(obj: object) -> object:
    """Recursively encode ``obj`` into JSON-able primitives, canonically.

    The encoding is the identity notion behind the :mod:`repro.exec`
    result cache: dataclasses become ``{"__type__": ClassName, **fields}``
    dicts (so two different policy classes with identical fields never
    collide), enums become their values, floats keep full precision via
    ``repr``, and mappings are emitted with stringified keys (JSON sorts
    them at dump time). Unknown object types are rejected rather than
    silently hashed by address.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, enum.Enum):
        return canonical_value(obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        encoded: dict = {"__type__": type(obj).__name__}
        for f in dataclasses.fields(obj):
            encoded[f.name] = canonical_value(getattr(obj, f.name))
        return encoded
    if isinstance(obj, (list, tuple)):
        return [canonical_value(item) for item in obj]
    if isinstance(obj, Mapping):
        return {str(key): canonical_value(value)
                for key, value in obj.items()}
    raise ConfigurationError(
        f"cannot canonicalize {type(obj).__name__!r} for cache hashing")


#: Valid initial page-placement strategies.
BASE_LAYOUTS = ("random", "sequential", "interleaved")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything a simulation run needs besides the trace itself.

    Attributes:
        base_layout: the initial page placement — ``"random"`` (default;
            models a long-running server whose buffer-cache pages carry
            no spatial order), ``"sequential"`` (first-touch fill), or
            ``"interleaved"`` (round-robin striping). PL, when enabled,
            starts from this placement and migrates on top of it.
    """

    memory: MemoryConfig = field(default_factory=MemoryConfig)
    buses: BusConfig = field(default_factory=BusConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    policy: PowerPolicy = None  # type: ignore[assignment]
    alignment: TemporalAlignmentConfig = field(
        default_factory=TemporalAlignmentConfig)
    layout: PopularityLayoutConfig = field(
        default_factory=PopularityLayoutConfig)
    base_layout: str = "random"
    strict_guarantee: bool = False

    def __post_init__(self) -> None:
        if self.policy is None:
            object.__setattr__(
                self, "policy", default_dynamic_policy(self.memory.power_model))
        if self.base_layout not in BASE_LAYOUTS:
            raise ConfigurationError(
                f"unknown base_layout {self.base_layout!r}; "
                f"expected one of {BASE_LAYOUTS}")

    # --- derived request geometry ---------------------------------------

    @property
    def frequency_hz(self) -> float:
        return self.memory.power_model.frequency_hz

    @property
    def serve_cycles(self) -> float:
        """Chip cycles to serve one DMA-memory request (the paper's 4)."""
        return self.memory.serve_cycles

    @property
    def request_period_cycles(self) -> float:
        """Cycles between successive requests of one transfer (the 12).

        Set by the bus: one ``request_bytes`` chunk per
        ``request_bytes / bus_bytes_per_cycle`` cycles.
        """
        bus_bytes_per_cycle = units.bandwidth_bytes_per_cycle(
            self.buses.bandwidth_bytes_per_s, self.frequency_hz)
        return self.memory.request_bytes / bus_bytes_per_cycle

    @property
    def stream_demand(self) -> float:
        """Fraction of chip capacity one bus stream consumes (1/3 default)."""
        return self.serve_cycles / self.request_period_cycles

    @property
    def bandwidth_ratio(self) -> float:
        """Memory bandwidth over per-bus I/O bandwidth (the paper's ~3)."""
        return (self.memory.power_model.bandwidth_bytes_per_s
                / self.buses.bandwidth_bytes_per_s)

    @property
    def saturating_buses(self) -> int:
        """``k = ceil(Rm / Rb)``: buses needed to saturate one chip.

        Computed with a 5% tolerance so that the paper's canonical
        geometry — PCI-X at 1.064 GB/s against RDRAM at 3.2 GB/s, a ratio
        of 3.0075 — yields ``k = 3`` (three buses saturate a chip), as the
        paper states, rather than a vacuous 4.
        """
        return max(1, math.ceil(self.bandwidth_ratio - 0.05))

    @property
    def proc_serve_cycles(self) -> float:
        """Chip cycles to serve one processor cache-line access."""
        return self.memory.power_model.serve_cycles(
            self.processor.cache_line_bytes)

    @property
    def undisturbed_service_cycles(self) -> float:
        """The paper's ``T``: mean request service time with no alignment
        and no power management — the chip-serve time of one request."""
        return self.serve_cycles

    # --- canonical identity ----------------------------------------------

    def canonical_dict(self) -> dict:
        """A JSON-able dict that fully determines this configuration.

        Two configs with the same canonical dict produce identical
        simulations. Used by :mod:`repro.exec` to build stable,
        restart-proof cache keys; see :func:`canonical_value` for the
        encoding rules.
        """
        return canonical_value(self)

    def fingerprint(self) -> str:
        """A stable hex digest of :meth:`canonical_dict`."""
        payload = json.dumps(self.canonical_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def with_mu(self, mu: float) -> "SimulationConfig":
        """A copy with the DMA-TA degradation parameter replaced."""
        return replace(self, alignment=replace(self.alignment, mu=mu))

    def with_groups(self, num_groups: int) -> "SimulationConfig":
        """A copy with the PL group count replaced."""
        return replace(self, layout=replace(self.layout, num_groups=num_groups))

    def with_bus_bandwidth(self, bandwidth_bytes_per_s: float) -> "SimulationConfig":
        """A copy with the per-bus bandwidth replaced (Figure 10 sweeps)."""
        return replace(
            self, buses=replace(self.buses,
                                bandwidth_bytes_per_s=bandwidth_bytes_per_s))
