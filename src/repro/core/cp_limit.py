"""CP-Limit -> mu calibration (Section 5.1).

DMA-TA's actual parameter is ``mu``, the allowed degradation of the
*average DMA-memory request service time*. Users think in terms of the
*client-perceived* average response-time degradation (CP-Limit), which is
far more forgiving: a client request's response time includes request
parsing, wire time, and often a multi-millisecond disk access, so a
microsecond-scale memory delay is a tiny fraction of it.

The paper transforms CP-Limit into ``mu`` off-line by determining how much
each DMA-memory request can be slowed to reach the client budget. We do
the same from the trace itself:

* ``R0`` — the undisturbed mean client response time: the request's
  non-memory base latency plus the span from client arrival to the
  nominal completion of its last transfer (no power management, no
  alignment, full bus share);
* ``q`` — the mean number of DMA-memory requests serving one client
  request.

A client budget of ``cp_limit * R0`` cycles spread over ``q`` requests of
undisturbed service time ``T`` gives ``mu = cp_limit * R0 / (q * T)``.
Because each transfer is delayed roughly once (its gathered head) while
``q`` spans all its requests, the resulting guarantee is conservative:
measured client degradation stays below CP-Limit, as Section 5.2 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimulationConfig
from repro.errors import TraceError
from repro.traces.records import DMATransfer
from repro.traces.trace import Trace


@dataclass(frozen=True)
class CPLimitCalibration:
    """Result of transforming a CP-Limit into the DMA-TA ``mu``.

    Attributes:
        cp_limit: the client-perceived degradation limit (e.g. 0.10).
        mu: the per-request degradation parameter DMA-TA will enforce.
        mean_response_cycles: undisturbed mean client response ``R0``.
        requests_per_client: mean DMA-memory requests per client request.
        clients: number of client requests used for calibration.
    """

    cp_limit: float
    mu: float
    mean_response_cycles: float
    requests_per_client: float
    clients: int


def nominal_transfer_cycles(size_bytes: int, config: SimulationConfig) -> float:
    """Wall-clock cycles of one transfer at full, exclusive bus bandwidth."""
    bus_bytes_per_cycle = (config.buses.bandwidth_bytes_per_s
                           / config.frequency_hz)
    return size_bytes / bus_bytes_per_cycle


def calibrate_mu(trace: Trace, config: SimulationConfig,
                 cp_limit: float) -> CPLimitCalibration:
    """Compute the ``mu`` that meets ``cp_limit`` for this trace.

    Raises :class:`TraceError` if the trace carries no client requests
    (there is then no client-perceived time to bound; pass ``mu``
    directly in that case).
    """
    if cp_limit < 0:
        raise TraceError("cp_limit must be non-negative")
    if not trace.clients:
        raise TraceError(
            f"trace {trace.name!r} has no client requests; "
            "set alignment.mu directly instead of using a CP-Limit")

    last_completion: dict[int, float] = {}
    requests_per_client: dict[int, int] = {}
    for record in trace.records:
        if not isinstance(record, DMATransfer) or record.request_id is None:
            continue
        completion = record.time + nominal_transfer_cycles(
            record.size_bytes, config)
        prior = last_completion.get(record.request_id, 0.0)
        last_completion[record.request_id] = max(prior, completion)
        requests_per_client[record.request_id] = (
            requests_per_client.get(record.request_id, 0)
            + record.num_requests(config.memory.request_bytes))

    total_response = 0.0
    total_requests = 0
    counted = 0
    for request_id, client in trace.clients.items():
        if request_id not in last_completion:
            continue  # client with no transfers inside the trace horizon
        response = (last_completion[request_id] - client.arrival
                    + client.base_cycles)
        total_response += max(0.0, response)
        total_requests += requests_per_client[request_id]
        counted += 1

    if counted == 0 or total_requests == 0:
        raise TraceError(
            f"trace {trace.name!r}: no client request has any transfer; "
            "cannot calibrate a CP-Limit")

    mean_response = total_response / counted
    q = total_requests / counted
    t = config.undisturbed_service_cycles
    mu = cp_limit * mean_response / (q * t)
    return CPLimitCalibration(
        cp_limit=cp_limit,
        mu=mu,
        mean_response_cycles=mean_response,
        requests_per_client=q,
        clients=counted,
    )
