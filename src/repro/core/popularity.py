"""Per-page DMA popularity tracking (Section 4.2.1).

The memory controller keeps a few bits of DMA reference count per page
(processor accesses are deliberately excluded — PL clusters pages by *DMA*
popularity). Counters saturate at the configured width and are aged at
interval boundaries, either by a right shift or by resetting, so the
layout adapts to workload drift.
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ConfigurationError


class PopularityTracker:
    """Saturating, aged DMA reference counters per page."""

    def __init__(self, counter_bits: int = 8, aging_shift: int = 1) -> None:
        if not 0 < counter_bits <= 32:
            raise ConfigurationError("counter_bits must be in [1, 32]")
        if aging_shift < 0:
            raise ConfigurationError("aging_shift must be non-negative")
        self.counter_bits = counter_bits
        self.aging_shift = aging_shift
        self._max = (1 << counter_bits) - 1
        self._counts: Counter[int] = Counter()
        self.total_recorded = 0

    def record(self, page: int, requests: int = 1) -> None:
        """Count ``requests`` DMA-memory requests against ``page``."""
        if requests <= 0:
            return
        self._counts[page] = min(self._max, self._counts[page] + requests)
        self.total_recorded += requests

    def count(self, page: int) -> int:
        """Current (saturated, aged) reference count of ``page``."""
        return self._counts.get(page, 0)

    def age(self) -> None:
        """Apply the aging step: right shift, or reset if shift is 0."""
        if self.aging_shift == 0:
            self._counts.clear()
            return
        aged = Counter()
        for page, value in self._counts.items():
            value >>= self.aging_shift
            if value:
                aged[page] = value
        self._counts = aged

    def ranked_pages(self) -> list[tuple[int, int]]:
        """Pages and counts, most popular first (ties by page id)."""
        return sorted(self._counts.items(), key=lambda item: (-item[1], item[0]))

    def total_count(self) -> int:
        """Sum of all current counters."""
        return sum(self._counts.values())

    def histogram(self, bins: int = 10) -> list[tuple[float, float]]:
        """The access-distribution histogram of Section 4.2.1.

        Returns ``(page_fraction, access_fraction)`` cumulative points:
        the most popular ``x`` fraction of tracked pages receives ``y``
        fraction of the recorded accesses — the data behind Figure 4.
        """
        ranked = self.ranked_pages()
        total = sum(count for _, count in ranked)
        if not ranked or total == 0 or bins <= 0:
            return []
        points: list[tuple[float, float]] = []
        cumulative = 0
        next_edge = 1
        for index, (_, count) in enumerate(ranked, start=1):
            cumulative += count
            while index >= next_edge * len(ranked) / bins and next_edge <= bins:
                points.append((index / len(ranked), cumulative / total))
                next_edge += 1
        return points
