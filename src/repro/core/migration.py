"""Page-migration planning and cost accounting for PL (Section 4.2).

At each interval boundary the planner diffs the new :class:`GroupPlan`
against the live :class:`~repro.memory.address.MutableLayout` and emits
the page moves needed to repair it — no more moves than there are pages
sitting in a group that does not match their popularity, per the paper.

Each move copies one page: the source chip reads it out and the
destination chip writes it in, so *both* chips are busy for
``page_bytes / bytes_per_cycle`` cycles, billed to the ``migration``
energy bucket. A destination chip with no free frame instead *swaps* the
incoming page with one of its misplaced residents (staged through the
controller's page buffer, Section 4.2.1), which costs two page copies —
the plan stays linear in the number of misplaced pages either way.

The controller redirects accesses through its translation table while the
OS page table lags behind; the table's capacity determines how often the
processor must be interrupted to flush translations
(:attr:`MigrationPlan.table_flushes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import PopularityLayoutConfig
from repro.core.layout import GroupPlan
from repro.errors import LayoutError
from repro.memory.address import MutableLayout
from repro.obs.events import TRACK_CONTROLLER

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

#: Per-plan cap on individual ``pl.move`` events; plans touching more
#: pages still emit the plan-level summary with ``truncated: true``.
_MOVE_EVENT_CAP = 64


@dataclass(frozen=True)
class PageMove:
    """One page relocation."""

    page: int
    from_chip: int
    to_chip: int


@dataclass
class MigrationPlan:
    """The ordered moves of one interval plus their cost summary."""

    moves: list[PageMove] = field(default_factory=list)
    table_flushes: int = 0

    @property
    def num_moves(self) -> int:
        return len(self.moves)

    def copy_cycles_per_chip(self, page_copy_cycles: float) -> dict[int, float]:
        """Chip-busy cycles each chip spends copying for this plan."""
        cycles: dict[int, float] = {}
        for move in self.moves:
            cycles[move.from_chip] = cycles.get(move.from_chip, 0.0) + page_copy_cycles
            cycles[move.to_chip] = cycles.get(move.to_chip, 0.0) + page_copy_cycles
        return cycles


class MigrationPlanner:
    """Plans and applies the interval-boundary page shuffles.

    Args:
        config: PL parameters.
        tracer: optional event tracer; each applied plan emits a
            ``pl.migration`` summary instant plus up to ``_MOVE_EVENT_CAP``
            per-page ``pl.move`` instants on the controller track.
        registry: optional metrics registry; running ``pl.moves`` and
            ``pl.table_flushes`` counters.
    """

    def __init__(self, config: PopularityLayoutConfig,
                 tracer: "Tracer | None" = None,
                 registry: "MetricsRegistry | None" = None) -> None:
        self.config = config
        self.total_moves = 0
        self.total_flushes = 0
        self._tracer = tracer
        self._moves_counter = (registry.counter("pl.moves")
                               if registry is not None else None)
        self._flushes_counter = (registry.counter("pl.table_flushes")
                                 if registry is not None else None)

    def _record_plan(self, migration: MigrationPlan, now: float) -> None:
        if self._moves_counter is not None:
            self._moves_counter.inc(migration.num_moves)
        if self._flushes_counter is not None:
            self._flushes_counter.inc(migration.table_flushes)
        if self._tracer is None or migration.num_moves == 0:
            return
        self._tracer.instant(now, "pl.migration", TRACK_CONTROLLER, {
            "moves": migration.num_moves,
            "flushes": migration.table_flushes,
            "chips": len({m.to_chip for m in migration.moves}
                         | {m.from_chip for m in migration.moves}),
            "truncated": migration.num_moves > _MOVE_EVENT_CAP,
        })
        for move in migration.moves[:_MOVE_EVENT_CAP]:
            self._tracer.instant(now, "pl.move", TRACK_CONTROLLER, {
                "page": move.page, "from": move.from_chip,
                "to": move.to_chip,
            })

    def plan_and_apply(self, plan: GroupPlan, layout: MutableLayout,
                       now: float = 0.0) -> MigrationPlan:
        """Compute the moves to realise ``plan`` and apply them to ``layout``.

        The layout is mutated as the plan is built so that capacity
        bookkeeping stays exact. Returns the executed plan (the engine
        turns it into migration streams for cost accounting).
        """
        chip_group = self._chip_groups(plan, layout.num_chips)
        migration = MigrationPlan()
        swap_pool = self._build_swap_pool(plan, layout, chip_group)

        for group in plan.groups:
            if group.is_cold:
                continue  # pages not needed anywhere hotter stay put
            target_chips = list(group.chips)
            for page in group.pages:
                current = layout.chip_of(page)
                if chip_group[current] == group.index:
                    continue  # already in the right group
                self._move_page(page, group.index, target_chips,
                                layout, swap_pool, migration)

        migration.table_flushes = (
            migration.num_moves // self.config.translation_table_entries)
        if migration.num_moves % self.config.translation_table_entries:
            migration.table_flushes += 1
        if migration.num_moves == 0:
            migration.table_flushes = 0

        self.total_moves += migration.num_moves
        self.total_flushes += migration.table_flushes
        self._record_plan(migration, now)
        return migration

    # ------------------------------------------------------------------

    @staticmethod
    def _chip_groups(plan: GroupPlan, num_chips: int) -> list[int]:
        chip_group = [plan.groups[-1].index] * num_chips
        for group in plan.groups:
            for chip in group.chips:
                chip_group[chip] = group.index
        return chip_group

    @staticmethod
    def _build_swap_pool(plan: GroupPlan, layout: MutableLayout,
                         chip_group: list[int]) -> dict[int, list[int]]:
        """Misplaced pages resident on each non-cold chip.

        These are the swap victims: a page sitting on a hot chip whose
        popularity does not earn it that spot can be exchanged with an
        incoming hot page at the cost of two copies. The scan is one pass
        over the group plan's page lists plus the chips' residents — the
        planner never walks the full address space.
        """
        pool: dict[int, list[int]] = {}
        hot_chips = plan.hot_chips
        targets = {page: group for page, group in plan.page_group.items()}
        for chip in hot_chips:
            pool[chip] = []
        if not hot_chips:
            return pool
        # Any page on a hot chip that is not assigned to that chip's group
        # is a victim. Untracked pages (never referenced) are ideal victims.
        for page in range(layout.total_pages):
            chip = layout.chip_of(page)
            if chip not in pool:
                continue
            if targets.get(page, plan.groups[-1].index) != chip_group[chip]:
                pool[chip].append(page)
        return pool

    def _move_page(
        self,
        page: int,
        group_index: int,
        target_chips: list[int],
        layout: MutableLayout,
        swap_pool: dict[int, list[int]],
        migration: MigrationPlan,
    ) -> None:
        # Prefer a free frame (one copy); otherwise swap with a misplaced
        # resident (two copies via the controller's staging buffer).
        destination = None
        for chip in target_chips:
            if layout.free_frames(chip) > 0:
                destination = chip
                break
        if destination is not None:
            source = layout.move(page, destination)
            migration.moves.append(PageMove(page, source, destination))
            return
        for chip in target_chips:
            victims = swap_pool.get(chip)
            while victims:
                victim = victims.pop()
                if layout.chip_of(victim) != chip:
                    continue  # stale entry: already swapped out
                source = layout.chip_of(page)
                layout.swap(page, victim)
                migration.moves.append(PageMove(page, source, chip))
                migration.moves.append(PageMove(victim, chip, source))
                return
        # Every frame in the group holds a correctly placed page; the
        # group is simply over-subscribed this interval.
