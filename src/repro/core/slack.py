"""The DMA-TA slack account (Section 4.1.2).

The account enforces the soft guarantee that the *average* DMA-memory
request service time stays within ``(1 + mu) * T``:

* every arrived DMA-memory request deposits ``mu * T`` of credit;
* at the start of each epoch, ``epochLength * n`` is charged, where ``n``
  is the number of pending (buffered) requests — the pessimistic
  assumption that every pending request will wait the whole epoch;
* waking a chip charges its wake latency times the requests pending for
  it;
* processor accesses charge their service time times the DMA-memory
  requests pending for the chip they hit.

The release rule compares the projected additional queueing delay
``n * U / 2`` — with ``U = m * T * ceil(r / k)`` an upper bound on the
time to serve all pending requests — against the available slack: once
``n * U / 2`` is close to (here: at least ``release_fraction`` of) the
slack, waiting any longer risks the guarantee, so the chip must start.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.events import TRACK_CONTROLLER

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer


@dataclass
class SlackAccount:
    """Credit/charge ledger for the DMA-TA performance guarantee.

    Attributes:
        mu: per-request degradation allowance.
        service_cycles: ``T``, the undisturbed per-request service time.
        num_buses: ``r``.
        saturating_buses: ``k = ceil(Rm/Rb)``.
        release_fraction: release once ``n*U/2 >= fraction * slack``.
        undercharge_fraction: fault-injection knob for the audit layer —
            the pessimistic epoch charge is scaled by ``1 - fraction``,
            deliberately under-charging the account so tests and
            ``repro audit --inject-undercharge`` can prove the auditor
            catches it. 0 (the default) is the correct scheme.
        tracer: optional event tracer; charges, release decisions, and
            budget violations are emitted on the controller track.
    """

    mu: float
    service_cycles: float
    num_buses: int
    saturating_buses: int
    release_fraction: float = 1.0
    undercharge_fraction: float = 0.0
    tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.mu < 0:
            raise ConfigurationError("mu must be non-negative")
        if self.service_cycles <= 0:
            raise ConfigurationError("service_cycles must be positive")
        if self.num_buses <= 0 or self.saturating_buses <= 0:
            raise ConfigurationError("bus counts must be positive")
        if not 0 < self.release_fraction <= 1:
            raise ConfigurationError("release_fraction must be in (0, 1]")
        if not 0 <= self.undercharge_fraction < 1:
            raise ConfigurationError(
                "undercharge_fraction must be in [0, 1)")
        self._charges = 0.0
        self._extra_credits = 0.0
        self._violations = 0

    @property
    def violations(self) -> int:
        """Times the observed slack dipped below zero (budget at risk)."""
        return self._violations

    # --- credits ----------------------------------------------------------

    def credit_per_request(self) -> float:
        """The ``mu * T`` deposited by each arriving request."""
        return self.mu * self.service_cycles

    def slack(self, arrived_requests: float) -> float:
        """Available slack given the total arrived request count.

        Negative slack means the guarantee is currently at risk; the
        pessimistic epoch charging is designed to release chips before
        that happens.
        """
        credits = arrived_requests * self.credit_per_request()
        return credits + self._extra_credits - self._charges

    # --- charges ----------------------------------------------------------

    def charge_epoch(self, epoch_cycles: float, pending_requests: int,
                     now: float = 0.0) -> None:
        """Pessimistic epoch-start charge: all pending wait the epoch out."""
        charged = (epoch_cycles * pending_requests
                   * (1.0 - self.undercharge_fraction))
        self._charges += charged
        if self.tracer is not None and pending_requests:
            # The event reports the cycles ACTUALLY charged (post any
            # injected fault) plus the epoch length, so the auditor can
            # independently recompute epoch * pending and flag the gap.
            self.tracer.instant(now, "slack.charge_epoch", TRACK_CONTROLLER,
                                {"cycles": charged,
                                 "pending": pending_requests,
                                 "epoch": epoch_cycles})

    def charge_wake(self, wake_latency: float, pending_requests: int,
                    now: float = 0.0) -> None:
        """Charge a chip activation against the requests it delays."""
        self._charges += wake_latency * pending_requests
        if self.tracer is not None:
            self.tracer.instant(now, "slack.charge_wake", TRACK_CONTROLLER,
                                {"cycles": wake_latency * pending_requests,
                                 "pending": pending_requests})

    def charge_processor(self, work_cycles: float, pending_requests: int,
                         now: float = 0.0) -> None:
        """Charge processor service time against delayed DMA requests."""
        self._charges += work_cycles * pending_requests
        if self.tracer is not None:
            self.tracer.instant(now, "slack.charge_processor",
                                TRACK_CONTROLLER,
                                {"cycles": work_cycles * pending_requests,
                                 "pending": pending_requests})

    def refund(self, cycles: float, now: float = 0.0) -> None:
        """Return over-charged pessimistic cycles (e.g. when a request is
        released mid-epoch after being charged for the full epoch)."""
        self._extra_credits += cycles
        if self.tracer is not None and cycles:
            self.tracer.instant(now, "slack.refund", TRACK_CONTROLLER,
                                {"cycles": cycles})

    @property
    def total_charges(self) -> float:
        return self._charges

    # --- release test -------------------------------------------------------

    def service_upper_bound(self, pending_by_bus: dict[int, int]) -> float:
        """``U = m * T * ceil(r / k)`` (Section 4.1.2).

        ``m`` is the largest number of pending requests from any one bus;
        requests can be grouped ``k`` per service round across distinct
        buses, so all pending requests complete within ``U``.
        """
        if not pending_by_bus:
            return 0.0
        m = max(pending_by_bus.values())
        groups = math.ceil(self.num_buses / self.saturating_buses)
        return m * self.service_cycles * groups

    def should_release(self, pending_by_bus: dict[int, int],
                       arrived_requests: float, now: float = 0.0) -> bool:
        """True if the pending requests for a chip must start now.

        Two triggers (Section 4.1.1-4.1.2):

        1. requests from ``k`` distinct buses are pending — full chip
           utilisation is achievable, gathering more has no benefit;
        2. the projected queueing delay ``n * U / 2`` has reached the
           release fraction of the available slack — waiting longer would
           endanger the guarantee.
        """
        if not pending_by_bus:
            return False
        if len(pending_by_bus) >= self.saturating_buses:
            return True
        n = sum(pending_by_bus.values())
        projected = n * self.service_upper_bound(pending_by_bus) / 2.0
        slack = self.slack(arrived_requests)
        if slack < 0.0:
            self._violations += 1
            if self.tracer is not None:
                self.tracer.instant(now, "slack.violation", TRACK_CONTROLLER,
                                    {"slack": slack, "projected": projected})
        if self.tracer is not None:
            self.tracer.counter(now, "slack", TRACK_CONTROLLER, slack)
        return projected >= self.release_fraction * slack
