"""Popularity-group construction for PL (Section 4.2.1).

Given the current page-popularity ranking, the grouper picks how many
chips should be "hot" (``N_hot`` — just enough that the most popular pages
filling them absorb the tunable fraction ``p`` of DMA-memory requests) and
splits the hot chips into exponentially sized groups ``G_1`` (1 chip),
``G_2`` (2 chips), ``G_3`` (4 chips), ... with the final hot group
absorbing the remainder; all other chips form the cold group ``G_K``.
With the paper's best setting of 2 groups this degenerates to one hot
group of ``N_hot`` chips plus the cold group.

The group sizes follow an exponential curve *on purpose*: the popularity
distribution is logarithmic (Figure 4), and a strict popularity ordering
would migrate pages whose counts differ insignificantly (a page accessed
8 times is not meaningfully colder than one accessed 10 times).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import PopularityLayoutConfig
from repro.errors import LayoutError


@dataclass(frozen=True)
class Group:
    """One popularity group: its chips and the pages assigned to it."""

    index: int
    chips: tuple[int, ...]
    pages: tuple[int, ...]
    is_cold: bool = False


@dataclass
class GroupPlan:
    """The target layout: which group every ranked page belongs to.

    ``groups[i]`` is more popular than ``groups[j]`` for ``i < j``; the
    last group is the cold group. ``page_group`` maps each *tracked* page
    to its target group index; untracked pages implicitly belong to the
    cold group. ``candidates`` records every page that *ranked* hot this
    interval (before the entry-confirmation filter), which the next
    interval uses to confirm new entries.
    """

    groups: list[Group]
    page_group: dict[int, int] = field(default_factory=dict)
    candidates: set[int] = field(default_factory=set)

    @property
    def hot_chips(self) -> set[int]:
        hot: set[int] = set()
        for group in self.groups:
            if not group.is_cold:
                hot.update(group.chips)
        return hot

    def group_of_chip(self, chip: int) -> int:
        for group in self.groups:
            if chip in group.chips:
                return group.index
        raise LayoutError(f"chip {chip} not in any group")

    def target_group(self, page: int) -> int:
        """Target group index for ``page`` (cold if untracked)."""
        return self.page_group.get(page, self.groups[-1].index)


def hot_group_sizes(n_hot: int, num_hot_groups: int) -> list[int]:
    """Split ``n_hot`` chips into exponentially growing group sizes.

    Sizes are 1, 2, 4, ... with the last hot group absorbing whatever is
    left. When ``n_hot`` is too small to populate every group, trailing
    groups are dropped (a 3-group plan over 2 hot chips becomes [1, 1]).
    """
    if n_hot <= 0:
        return []
    if num_hot_groups <= 1:
        return [n_hot]
    sizes: list[int] = []
    remaining = n_hot
    for i in range(num_hot_groups):
        if remaining <= 0:
            break
        is_last = i == num_hot_groups - 1
        size = remaining if is_last else min(1 << i, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


class PopularityGrouper:
    """Builds :class:`GroupPlan` objects from popularity rankings."""

    def __init__(self, num_chips: int, pages_per_chip: int,
                 config: PopularityLayoutConfig) -> None:
        if num_chips < 2:
            raise LayoutError("PL needs at least two chips")
        self.num_chips = num_chips
        self.pages_per_chip = pages_per_chip
        self.config = config

    def hot_page_count(self, ranked: list[tuple[int, int]]) -> int:
        """Pages from the top of the ranking that cover ``p`` of accesses.

        Only these pages earn a hot frame; clustering anything colder
        would pay migration energy for accesses that never come.
        """
        total = sum(count for _, count in ranked)
        if total == 0:
            return 0
        target = self.config.hot_access_fraction * total
        cumulative = 0
        pages_needed = 0
        for _, count in ranked:
            if count < self.config.min_hot_references:
                break  # everything below is sampling noise, not heat
            cumulative += count
            pages_needed += 1
            if cumulative >= target:
                break
        return pages_needed

    def compute_n_hot(self, ranked: list[tuple[int, int]]) -> int:
        """Chips needed to hold the pages that cover ``p`` of accesses.

        Clamped to [1, num_chips - 1] so a cold group always exists.
        """
        pages_needed = self.hot_page_count(ranked)
        n_hot = max(1, math.ceil(pages_needed / self.pages_per_chip))
        return min(self.num_chips - 1, n_hot)

    def build_plan(self, ranked: list[tuple[int, int]],
                   previous_hot: set[int] | None = None,
                   previous_candidates: set[int] | None = None) -> GroupPlan:
        """The target grouping for the current popularity ranking.

        Hot chips are always the lowest-numbered ones so that successive
        intervals keep the same designation and migration churn stays
        proportional to actual popularity drift. Only the pages that
        cover the ``p`` access fraction are assigned hot frames; every
        other page belongs to the cold group and stays wherever it is.

        Args:
            ranked: ``(page, count)`` pairs, most popular first.
            previous_hot: pages hot in the previous interval. Such a page
                is retained (appended after the new hot pages) while it
                still ranks within ``hysteresis_factor`` times the hot
                page count, damping boundary flapping.
            previous_candidates: pages that ranked hot in the previous
                interval. A page not yet hot must rank hot in two
                consecutive intervals before it is migrated (entry
                confirmation) — a one-interval burst is not worth two
                page copies.
        """
        pages_needed = self.hot_page_count(ranked)
        n_hot = self.compute_n_hot(ranked)
        sizes = hot_group_sizes(n_hot, self.config.num_groups - 1)
        candidates = {page for page, _ in ranked[:pages_needed]}
        hot_pages = list(ranked[:pages_needed])
        if previous_candidates is not None:
            confirmed = previous_candidates | (previous_hot or set())
            hot_pages = [(p, c) for p, c in hot_pages if p in confirmed]
        if previous_hot:
            zone_end = min(len(ranked),
                           int(pages_needed * self.config.hysteresis_factor))
            for page, count in ranked[pages_needed:zone_end]:
                if page in previous_hot:
                    hot_pages.append((page, count))

        groups: list[Group] = []
        page_group: dict[int, int] = {}
        next_chip = 0
        cursor = 0
        for index, size in enumerate(sizes):
            chips = tuple(range(next_chip, next_chip + size))
            capacity = size * self.pages_per_chip
            pages = tuple(page for page, _ in hot_pages[cursor:cursor + capacity])
            for page in pages:
                page_group[page] = index
            groups.append(Group(index=index, chips=chips, pages=pages))
            next_chip += size
            cursor += capacity

        cold_chips = tuple(range(next_chip, self.num_chips))
        cold_pages = tuple(page for page, _ in ranked[pages_needed:]
                           if page not in page_group)
        cold_index = len(groups)
        for page in cold_pages:
            page_group[page] = cold_index
        groups.append(Group(index=cold_index, chips=cold_chips,
                            pages=cold_pages, is_cold=True))
        return GroupPlan(groups=groups, page_group=page_group,
                         candidates=candidates)
