"""DMA-TA: temporal alignment of DMA transfers (Section 4.1).

The controller buffers the head request of any transfer that finds its
chip in a low-power mode, gathering heads from *different I/O buses* to
the same chip. A gathered chip is released when either

* heads from ``k = ceil(Rm/Rb)`` distinct buses are pending (the chip can
  then be fully utilised; gathering more has no benefit), or
* the slack account says waiting longer would endanger the
  ``(1 + mu) * T`` average-service-time guarantee, or
* the oldest buffered transfer has consumed its own share of the slack
  (its per-transfer deadline, ``deadline_fraction * mu * T *
  num_requests`` after arrival). The deadline rule keeps releases spread
  out in time: a transfer gathering on a cold chip, whose alignment
  partners never arrive, is let through individually instead of piling
  up with every other such transfer until the global slack drains — a
  bunched release would flood the I/O buses with concurrent transfers
  and *cost* energy rather than save it.

Once released, the streams proceed in lockstep: the bus pacing of each
transfer is fixed, so the interleaving established at release persists for
the rest of the transfers, and later requests are never delayed again —
including those of new transfers arriving while the chip is already
active, which are admitted immediately.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable

from repro.config import SimulationConfig
from repro.core.controller import MemoryController
from repro.core.slack import SlackAccount
from repro.io.dma import FluidStream
from repro.memory.chip import FluidChip
from repro.obs.events import TRACK_CONTROLLER

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


class TemporalAlignmentController(MemoryController):
    """The DMA-TA admission policy.

    Args:
        config: simulation configuration (``config.alignment.mu`` is the
            per-request degradation allowance).
        arrived_requests: callable returning the number of DMA-memory
            requests that have arrived at the memory system so far,
            *excluding* buffered head requests (the controller adds its
            own pending count). The engine supplies this from its served
            work integral.
        tracer: optional event tracer; head buffering and batch releases
            (with their trigger) are emitted on the controller track.
        registry: optional metrics registry; release batch sizes (the
            lockstep group lengths) land in the ``ta.batch_size``
            histogram.
    """

    def __init__(self, config: SimulationConfig,
                 arrived_requests: Callable[[], float],
                 tracer: "Tracer | None" = None,
                 registry: "MetricsRegistry | None" = None) -> None:
        self._config = config
        self._arrived_served = arrived_requests
        self._tracer = tracer
        self._batch_hist = (registry.histogram("ta.batch_size")
                            if registry is not None else None)
        self.slack = SlackAccount(
            mu=config.alignment.mu,
            service_cycles=config.undisturbed_service_cycles,
            num_buses=config.buses.count,
            saturating_buses=config.saturating_buses,
            release_fraction=config.alignment.slack_release_fraction,
            tracer=tracer,
        )
        self._pending: dict[int, list[FluidStream]] = defaultdict(list)
        self._pending_total = 0
        self._pending_requests = 0  # committed requests of buffered heads

        # Counters for the simulation result.
        self.transfers_buffered = 0
        self.transfers_passed_through = 0
        self.releases_by_gather = 0
        self.releases_by_slack = 0
        self.releases_by_deadline = 0
        self.releases_by_drain = 0
        self.max_gathered = 0

    # ------------------------------------------------------------------

    def _arrived(self) -> float:
        """Request count backing the slack credits.

        Served requests plus the *committed* requests of buffered
        transfers: delaying a head delays its whole transfer, and that
        transfer's requests — each entitled to ``mu * T`` of delay — are
        guaranteed to arrive once it is released, so their credit is
        spendable on the delay being incurred now. Without this
        anticipation a cold-start gather could never wait longer than
        the few credits already banked.
        """
        return self._arrived_served() + self._pending_requests

    def _pending_by_bus(self, chip_id: int) -> dict[int, int]:
        counts: dict[int, int] = defaultdict(int)
        for stream in self._pending.get(chip_id, ()):
            counts[stream.bus_id if stream.bus_id is not None else -1] += 1
        return dict(counts)

    def _pop_pending(self, chip_id: int) -> list[FluidStream]:
        streams = self._pending.pop(chip_id, [])
        self._pending_total -= len(streams)
        self._pending_requests -= sum(
            getattr(s, "num_requests", 0) or 1 for s in streams)
        self.max_gathered = max(self.max_gathered, len(streams))
        return streams

    def _record_release(self, chip_id: int, streams: list[FluidStream],
                        reason: str, now: float) -> None:
        """Observe one released lockstep batch (size + trigger)."""
        batch_size = len(streams)
        if batch_size <= 0:
            return
        if self._batch_hist is not None:
            self._batch_hist.record(batch_size)
        if self._tracer is not None:
            self._tracer.instant(now, "ta.release", TRACK_CONTROLLER,
                                 {"chip": chip_id, "batch": batch_size,
                                  "reason": reason})
            # Per-transfer release marks feed the audit waterfall: how
            # long each head gathered, and which trigger let it go.
            for stream in streams:
                self._tracer.instant(
                    now, "dma.release", TRACK_CONTROLLER,
                    {"id": getattr(stream, "seq", 0), "chip": chip_id,
                     "reason": reason,
                     "waited": now - getattr(stream, "arrival_time", now)})

    def _allowance(self, stream, now: float) -> float:
        """How long a buffered transfer may currently wait.

        At least its own slack budget (``deadline_fraction * mu * T *
        num_requests`` — the degradation its own requests are entitled
        to), topped up by an equal share of the *global* slack surplus:
        credits deposited by the many requests that flowed through
        undelayed fund longer waits for the few that are gathering, which
        is exactly how the paper's single shared slack account behaves.
        The per-transfer floor keeps releases spread in time, so release
        storms (which would flood the buses) cannot form.
        """
        fraction = self._config.alignment.deadline_fraction
        requests = getattr(stream, "num_requests", 0) or 1
        own = self.slack.credit_per_request() * requests
        shared = self.slack.slack(self._arrived()) / (self._pending_total + 1)
        return fraction * max(own, shared)

    def _deadline_due(self, chip_id: int, now: float) -> bool:
        return any(now - s.arrival_time >= self._allowance(s, now)
                   for s in self._pending.get(chip_id, ()))

    # ------------------------------------------------------------------
    # MemoryController interface
    # ------------------------------------------------------------------

    def admit(self, stream: FluidStream, chip: FluidChip,
              now: float) -> list[FluidStream]:
        chip_id = chip.chip_id
        if not chip.is_low_power(now):
            # Chip already active (serving other transfers, processor
            # accesses, or still inside its idle threshold): no delay,
            # and anything gathered for it rides along.
            self.transfers_passed_through += 1
            released = self._pop_pending(chip_id)
            released.append(stream)
            if len(released) > 1:
                self._record_release(chip_id, released, "chip-active", now)
            return released

        if self.slack.credit_per_request() <= 0.0:
            # mu == 0: no budget to delay anything.
            self.transfers_passed_through += 1
            return [stream]

        if self._allowance(stream, now) < 2 * self._config.alignment.epoch_cycles:
            # The transfer's waiting budget is too small for the epoch-
            # granularity release machinery to respect; delaying it would
            # risk the guarantee for no realistic gathering win.
            self.transfers_passed_through += 1
            return [stream]

        self._pending[chip_id].append(stream)
        self._pending_total += 1
        self._pending_requests += getattr(stream, "num_requests", 0) or 1
        self.transfers_buffered += 1
        if self._tracer is not None:
            self._tracer.instant(now, "ta.buffer", TRACK_CONTROLLER,
                                 {"chip": chip_id,
                                  "bus": getattr(stream, "bus_id", None),
                                  "id": getattr(stream, "seq", 0),
                                  "requests": getattr(stream, "num_requests",
                                                      0) or 1,
                                  "pending": self._pending_total})

        by_bus = self._pending_by_bus(chip_id)
        if len(by_bus) >= self.slack.saturating_buses:
            self.releases_by_gather += 1
            batch = self._pop_pending(chip_id)
            self._record_release(chip_id, batch, "gather", now)
            return batch
        if self.slack.should_release(by_bus, self._arrived(), now):
            self.releases_by_slack += 1
            batch = self._pop_pending(chip_id)
            self._record_release(chip_id, batch, "slack", now)
            return batch
        return []

    def epoch_cycles(self) -> float | None:
        return self._config.alignment.epoch_cycles

    def on_epoch(self, now: float) -> dict[int, list[FluidStream]]:
        self.slack.charge_epoch(
            self._config.alignment.epoch_cycles, self._pending_total, now)
        releases: dict[int, list[FluidStream]] = {}
        for chip_id in list(self._pending):
            if self._deadline_due(chip_id, now):
                self.releases_by_deadline += 1
                releases[chip_id] = self._pop_pending(chip_id)
                self._record_release(chip_id, releases[chip_id],
                                     "deadline", now)
                continue
            by_bus = self._pending_by_bus(chip_id)
            if self.slack.should_release(by_bus, self._arrived(), now):
                self.releases_by_slack += 1
                releases[chip_id] = self._pop_pending(chip_id)
                self._record_release(chip_id, releases[chip_id],
                                     "slack", now)
        return releases

    def on_wake(self, chip_id: int, wake_latency: float, now: float,
                pending_requests: int = 1) -> None:
        # "decreasing Slack by the time overhead of activating each memory
        # chip times the number of requests pending for it" — the engine
        # passes the size of the batch being released.
        self.slack.charge_wake(wake_latency, pending_requests, now)

    def on_proc_access(self, chip_id: int, work_cycles: float,
                       dma_streams_at_chip: int, now: float) -> None:
        pending = len(self._pending.get(chip_id, ())) + dma_streams_at_chip
        if pending:
            self.slack.charge_processor(work_cycles, pending, now)

    def on_chip_active(self, chip: FluidChip,
                       now: float) -> list[FluidStream]:
        batch = self._pop_pending(chip.chip_id)
        self._record_release(chip.chip_id, batch, "chip-active", now)
        return batch

    def drain(self, now: float) -> dict[int, list[FluidStream]]:
        releases = {}
        for chip_id in list(self._pending):
            self.releases_by_drain += 1
            releases[chip_id] = self._pop_pending(chip_id)
            self._record_release(chip_id, releases[chip_id], "drain", now)
        return releases

    def pending_count(self) -> int:
        return self._pending_total

    def stats(self) -> dict[str, float]:
        return {
            "transfers_buffered": float(self.transfers_buffered),
            "transfers_passed_through": float(self.transfers_passed_through),
            "releases_by_gather": float(self.releases_by_gather),
            "releases_by_slack": float(self.releases_by_slack),
            "releases_by_deadline": float(self.releases_by_deadline),
            "releases_by_drain": float(self.releases_by_drain),
            "max_gathered": float(self.max_gathered),
            "slack_charges": self.slack.total_charges,
        }
