"""The paper's contribution: DMA-aware memory energy management.

* :mod:`repro.core.controller` — the controller interface and the
  pass-through baseline (requests wake the chip and go straight through;
  the low-level dynamic policy does all the managing).
* :mod:`repro.core.slack` — the slack account behind DMA-TA's soft
  performance guarantee (Section 4.1.2).
* :mod:`repro.core.temporal_alignment` — DMA-TA itself (Section 4.1).
* :mod:`repro.core.popularity` / :mod:`repro.core.layout` /
  :mod:`repro.core.migration` — the PL technique (Section 4.2).
* :mod:`repro.core.cp_limit` — CP-Limit -> ``mu`` calibration (Section 5.1).
"""

from repro.core.controller import MemoryController, BaselineController
from repro.core.slack import SlackAccount
from repro.core.temporal_alignment import TemporalAlignmentController
from repro.core.popularity import PopularityTracker
from repro.core.layout import PopularityGrouper, GroupPlan
from repro.core.migration import MigrationPlanner, MigrationPlan, PageMove
from repro.core.cp_limit import CPLimitCalibration, calibrate_mu

__all__ = [
    "MemoryController",
    "BaselineController",
    "SlackAccount",
    "TemporalAlignmentController",
    "PopularityTracker",
    "PopularityGrouper",
    "GroupPlan",
    "MigrationPlanner",
    "MigrationPlan",
    "PageMove",
    "CPLimitCalibration",
    "calibrate_mu",
]
