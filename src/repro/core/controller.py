"""Memory-controller policies: the interface and the baseline.

The controller sits between the DMA engines and the chips. Its only
authority in this model is *when* a transfer's requests are allowed
through to a chip; the low-level power policy (static or dynamic) still
owns the chip power states. The baseline controller lets everything
through immediately — this is the "previous approaches" system the paper
compares against. :class:`~repro.core.temporal_alignment.
TemporalAlignmentController` overrides admission to gather requests.
"""

from __future__ import annotations

import abc

from repro.io.dma import FluidStream
from repro.memory.chip import FluidChip


class MemoryController(abc.ABC):
    """Admission policy for DMA transfers at the memory controller."""

    @abc.abstractmethod
    def admit(self, stream: FluidStream, chip: FluidChip,
              now: float) -> list[FluidStream]:
        """Decide what to do with a newly arrived transfer.

        Returns the streams to start *now* at ``chip``: an empty list means
        the transfer was buffered (DMA-TA gathering); a non-empty list is a
        release and may include previously buffered transfers.
        """

    def epoch_cycles(self) -> float | None:
        """Epoch length for periodic accounting, or None for no epochs."""
        return None

    def on_epoch(self, now: float) -> dict[int, list[FluidStream]]:
        """Periodic bookkeeping; returns ``chip_id -> streams`` to release."""
        return {}

    def on_wake(self, chip_id: int, wake_latency: float, now: float,
                pending_requests: int = 1) -> None:
        """A chip serving this controller's release is being woken."""

    def on_proc_access(self, chip_id: int, work_cycles: float,
                       dma_streams_at_chip: int, now: float) -> None:
        """Processor accesses of ``work_cycles`` hit ``chip_id``."""

    def on_chip_active(self, chip: FluidChip,
                       now: float) -> list[FluidStream]:
        """The chip became active for another reason (e.g. a processor
        access); returns buffered streams that should ride along."""
        return []

    def drain(self, now: float) -> dict[int, list[FluidStream]]:
        """Trace ended: release everything still buffered."""
        return {}

    def pending_count(self) -> int:
        """Number of buffered transfers (pending head requests)."""
        return 0

    def stats(self) -> dict[str, float]:
        """Controller-specific counters for the simulation result."""
        return {}


class BaselineController(MemoryController):
    """Pass-through admission: every transfer starts immediately.

    With the dynamic low-level policy underneath, this is exactly the
    paper's baseline ("the dynamic energy management scheme [16]").
    """

    def __init__(self) -> None:
        self.transfers_admitted = 0

    def admit(self, stream: FluidStream, chip: FluidChip,
              now: float) -> list[FluidStream]:
        self.transfers_admitted += 1
        return [stream]

    def stats(self) -> dict[str, float]:
        return {"transfers_admitted": float(self.transfers_admitted)}
